"""Run ledger: append/read roundtrip, torn tails, failure digests."""

import json

from repro.obs.ledger import RunLedger, failure_digest, read_ledger
from repro.perf import PERF


class TestRoundtrip:
    def test_emit_read_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("run_started", name="camp", total=4)
            ledger.emit("candidate_evaluated", index=0, score=1.5)
        events, skipped = read_ledger(path)
        assert skipped == 0
        assert [e["event"] for e in events] == [
            "run_started", "candidate_evaluated",
        ]
        assert events[0]["name"] == "camp" and events[0]["total"] == 4
        assert events[1]["score"] == 1.5
        for e in events:
            assert e["ts"] > 0 and e["pid"] > 0

    def test_lines_are_flushed_as_written(self, tmp_path):
        # A concurrent reader (campaign watch) must see events without
        # waiting for the writer to close.
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.emit("run_started", name="c")
        events, _ = read_ledger(path)
        assert [e["event"] for e in events] == ["run_started"]
        ledger.close()

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(tmp_path / "nope.jsonl") == ([], 0)


class TestTornTail:
    def test_torn_tail_and_junk_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("run_started", name="c")
            ledger.emit("candidate_evaluated", index=0)
        with open(path, "a") as fh:
            fh.write('{"ts": 1.0, "pid": 1, "event": "candidate_eval')
        events, skipped = read_ledger(path)
        assert [e["event"] for e in events] == [
            "run_started", "candidate_evaluated",
        ]
        assert skipped == 1

    def test_non_dict_and_eventless_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(
            "[1, 2, 3]\n"            # valid JSON, wrong shape
            '"just a string"\n'
            '{"ts": 1.0}\n'          # dict without "event"
            "\n"                     # blank: ignored, not counted
            '{"event": "ok"}\n'
        )
        events, skipped = read_ledger(path)
        assert [e["event"] for e in events] == ["ok"]
        assert skipped == 3


class TestNeverRaises:
    def test_unserializable_field_is_swallowed_and_counted(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        circular = {}
        circular["self"] = circular
        before = PERF.get("obs.ledger.errors")
        with RunLedger(path) as ledger:
            ledger.emit("bad", payload=circular)
            ledger.emit("good")
        assert PERF.get("obs.ledger.errors") == before + 1
        events, skipped = read_ledger(path)
        assert [e["event"] for e in events] == ["good"]
        assert skipped == 0

    def test_non_json_values_stringify_instead_of_failing(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("typed", where=tmp_path)  # Path isn't JSON
        events, _ = read_ledger(path)
        assert events[0]["where"] == str(tmp_path)

    def test_unwritable_path_is_swallowed_and_counted(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        before = PERF.get("obs.ledger.errors")
        ledger = RunLedger(blocker / "ledger.jsonl")  # parent is a file
        ledger.emit("doomed")
        ledger.close()
        assert PERF.get("obs.ledger.errors") >= before + 1

    def test_output_is_one_compact_line_per_event(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RunLedger(path) as ledger:
            ledger.emit("e", note="multi\nline\ntext")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["note"] == "multi\nline\ntext"


class TestFailureDigest:
    @staticmethod
    def _catch(exc_type, msg):
        def boom():
            raise exc_type(msg)

        try:
            boom()
        except exc_type as err:
            return err

    def test_same_failure_same_digest(self):
        e1 = self._catch(ValueError, "invalid cut")
        e2 = self._catch(ValueError, "invalid cut")
        d1, d2 = failure_digest(e1), failure_digest(e2)
        assert d1 == d2
        assert len(d1) == 12
        assert set(d1) <= set("0123456789abcdef")

    def test_different_failures_differ(self):
        e1 = self._catch(ValueError, "invalid cut")
        e2 = self._catch(RuntimeError, "invalid cut")
        e3 = self._catch(ValueError, "other message")
        assert failure_digest(e1) != failure_digest(e2)
        assert failure_digest(e1) != failure_digest(e3)
