"""Store integrity checking and repair (``repro store fsck``).

The store's design tolerates exactly one kind of damage — a torn tail
left by a killed writer — and treats everything else as real
corruption.  fsck must agree with that line: torn tails and a stale or
missing (derived) index are *clean*; mid-segment corruption and an
unparseable index are *damage*, repairable by quarantining bad lines
and rebuilding the index from the surviving records.
"""

import json

import pytest

from repro.campaign.fsck import QUARANTINE_DIR, fsck_store, render_fsck
from repro.campaign.store import KIND_CANDIDATE, ResultStore
from repro.perf import PERF


def build_store(root, keys=("k1", "k2", "k3")):
    """A store with one record per key, index written on close."""
    with ResultStore(root) as store:
        for key in keys:
            store.put(KIND_CANDIDATE, key, {"score": key})
    return root


def the_segment(root):
    (seg,) = list((root / "segments").glob("*.jsonl"))
    return seg


class TestScan:
    def test_clean_store(self, tmp_path):
        build_store(tmp_path)
        report = fsck_store(tmp_path)
        assert report.clean
        assert report.live_keys == 3
        assert report.corrupt_lines == 0
        assert report.torn_lines == 0
        assert report.index_status == "ok"
        assert report.lost_keys == []
        assert "store is clean" in render_fsck(report)

    def test_empty_directory_is_clean(self, tmp_path):
        report = fsck_store(tmp_path)
        assert report.clean
        assert report.live_keys == 0
        assert report.index_status == "missing"

    def test_torn_tail_is_tolerated(self, tmp_path):
        build_store(tmp_path)
        seg = the_segment(tmp_path)
        with open(seg, "a") as fh:
            fh.write('{"kind":"candidate","key":"torn-k","pay')
        report = fsck_store(tmp_path)
        assert report.clean
        assert report.torn_lines == 1
        assert report.corrupt_lines == 0
        # The torn record never made it: resume would redo that key.
        assert report.lost_keys == ["torn-k"]
        assert "tolerated torn tail" in render_fsck(report)

    def test_mid_segment_corruption_is_damage(self, tmp_path):
        build_store(tmp_path)
        seg = the_segment(tmp_path)
        lines = seg.read_text().splitlines()
        lines[1] = lines[1][:-10]  # bit-rot inside the k2 record
        seg.write_text("\n".join(lines) + "\n")
        report = fsck_store(tmp_path)
        assert not report.clean
        assert report.corrupt_lines == 1
        assert report.torn_lines == 0
        assert report.live_keys == 2
        assert report.lost_keys == ["k2"]
        # The pre-damage index still names k2: stale, not corrupt.
        assert report.index_status == "stale"
        assert "DAMAGED" in render_fsck(report)

    def test_key_with_a_surviving_record_is_not_lost(self, tmp_path):
        root = build_store(tmp_path)
        # A second writer re-publishes k2 (duplicate appends are fine).
        with ResultStore(root) as store:
            store.put(KIND_CANDIDATE, "k2", {"score": "k2"})
        segments = sorted((root / "segments").glob("*.jsonl"))
        assert len(segments) == 2
        first = segments[0] if "k1" in segments[0].read_text() \
            else segments[1]
        lines = first.read_text().splitlines()
        lines[1] = lines[1][:-10]
        first.write_text("\n".join(lines) + "\n")
        report = fsck_store(root)
        assert report.corrupt_lines == 1
        assert report.lost_keys == []  # k2 survives in the other segment

    def test_corrupt_index_is_damage(self, tmp_path):
        build_store(tmp_path)
        (tmp_path / "index.json").write_text("{not json")
        report = fsck_store(tmp_path)
        assert not report.clean
        assert report.index_status == "corrupt"

    def test_missing_index_is_tolerated(self, tmp_path):
        build_store(tmp_path)
        (tmp_path / "index.json").unlink()
        report = fsck_store(tmp_path)
        assert report.clean
        assert report.index_status == "missing"


class TestRepair:
    def test_repair_quarantines_and_rebuilds(self, tmp_path):
        build_store(tmp_path)
        seg = the_segment(tmp_path)
        lines = seg.read_text().splitlines()
        bad_line = lines[1][:-10]
        lines[1] = bad_line
        seg.write_text("\n".join(lines) + "\n")
        (tmp_path / "index.json").write_text("{not json")

        report = fsck_store(tmp_path, repair=True)
        assert report.repaired
        assert report.clean
        assert report.quarantined_lines == 1
        assert report.index_status == "ok"
        assert "repaired" in render_fsck(report)

        # The bad line is preserved in the sidecar, gone from the
        # segment, and the rebuilt index matches the survivors.
        sidecar = tmp_path / QUARANTINE_DIR / f"{seg.name}.bad"
        assert sidecar.read_text() == bad_line + "\n"
        assert bad_line not in seg.read_text()
        index = json.loads((tmp_path / "index.json").read_text())
        assert sorted(index["keys"][KIND_CANDIDATE]) == ["k1", "k3"]

        # A fresh scan agrees, and the loader sees zero skipped lines.
        again = fsck_store(tmp_path)
        assert again.clean
        assert again.corrupt_lines == 0
        assert again.index_status == "ok"
        with ResultStore(tmp_path) as store:
            assert store.skipped_lines == 0
            assert store.keys(KIND_CANDIDATE) == {"k1", "k3"}

    def test_repair_tidies_a_torn_tail_too(self, tmp_path):
        build_store(tmp_path)
        seg = the_segment(tmp_path)
        with open(seg, "a") as fh:
            fh.write('{"kind":"candidate","key":"torn-k","pay')
        report = fsck_store(tmp_path, repair=True)
        assert report.repaired
        assert report.quarantined_lines == 1
        with ResultStore(tmp_path) as store:
            assert store.skipped_lines == 0
            assert len(store.keys(KIND_CANDIDATE)) == 3


class TestCli:
    def run_cli(self, argv):
        import importlib

        cli = importlib.import_module("repro.cli.main")
        return cli.main(argv)

    def test_exit_codes_across_damage_and_repair(self, tmp_path, capsys):
        home = tmp_path / "campaigns"
        build_store(home / "store")
        assert self.run_cli(
            ["store", "fsck", "--out", str(home)]
        ) == 0

        seg = the_segment(home / "store")
        lines = seg.read_text().splitlines()
        lines[0] = lines[0][:-10]
        seg.write_text("\n".join(lines) + "\n")
        assert self.run_cli(["store", "fsck", "--out", str(home)]) == 1
        out = capsys.readouterr().out
        assert "DAMAGED" in out
        assert "--repair" in out

        assert self.run_cli(
            ["store", "fsck", "--out", str(home), "--repair"]
        ) == 0
        assert self.run_cli(["store", "fsck", "--out", str(home)]) == 0

    def test_store_override_and_missing_root(self, tmp_path):
        build_store(tmp_path / "elsewhere")
        assert self.run_cli(
            ["store", "fsck", "--store", str(tmp_path / "elsewhere")]
        ) == 0
        with pytest.raises(SystemExit):
            self.run_cli(["store", "fsck", "--out", str(tmp_path / "nope")])


class TestDurability:
    def test_write_index_is_best_effort(self, tmp_path, monkeypatch):
        from repro.campaign import store as store_mod

        store = ResultStore(tmp_path)
        store.put(KIND_CANDIDATE, "k", {"score": 1})

        def boom(path, data):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(store_mod, "atomic_write_json", boom)
        PERF.reset()
        assert store.write_index() is None
        assert PERF.get("store.index.errors") == 1
        store.close()  # close() must not raise either
        monkeypatch.undo()
        # The records themselves survived; fsck only sees a stale or
        # missing derived index.
        report = fsck_store(tmp_path)
        assert report.live_keys == 1
        assert report.clean

    def test_corrupt_manifest_recovers(self, tmp_path):
        """A trashed manifest fails status loudly but does not brick
        the campaign: the runner rebuilds it from the spec, and the
        store still serves every completed candidate."""
        from repro.campaign import (
            CampaignError,
            CampaignRunner,
            CampaignSpec,
            campaign_status,
        )
        from repro.core.sa import SASettings
        from repro.dse import (
            DseGrid,
            Workload,
            enumerate_candidates,
        )
        from repro.workloads.graph import DNNGraph
        from repro.workloads.layer import Layer, LayerType

        g = DNNGraph("t")
        g.add_layer(Layer("l0", LayerType.CONV, out_h=8, out_w=8,
                          out_k=16, in_c=3, kernel_r=3, kernel_s=3,
                          pad_h=1, pad_w=1))
        grid = DseGrid(
            tops=8, cuts=(1,), dram_bw_per_tops=(1.0,),
            noc_bw_gbps=(32,), d2d_ratio=(0.5,), glb_kb=(512,),
            macs_per_core=(1024,),
        )

        def spec():
            return CampaignSpec(
                name="camp",
                candidates=enumerate_candidates(grid),
                workloads=[Workload(g, batch=1)],
                sa=SASettings(iterations=4, seed=7),
                warm_start=False,
            )

        with CampaignRunner(spec(), tmp_path) as runner:
            first = runner.run(workers=1)
        assert first.evaluated >= 1

        manifest = tmp_path / "camp" / "manifest.json"
        manifest.write_text("{definitely not json")
        with pytest.raises(CampaignError, match="corrupt"):
            campaign_status(tmp_path, "camp")

        PERF.reset()
        with CampaignRunner(spec(), tmp_path) as runner:
            report = runner.run(workers=1)
        assert PERF.get("campaign.manifest.corrupt") >= 1
        assert report.evaluated == 0
        assert report.store_hits == first.evaluated
        # The manifest is whole again; status works.
        assert campaign_status(tmp_path, "camp")["done"] == \
            first.evaluated
