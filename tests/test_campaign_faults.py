"""Fault-tolerant campaign execution under the deterministic chaos plan.

The contract pinned here is ISSUE 9's acceptance criterion: under a
seeded chaos plan injecting a worker SIGKILL, a hang past the deadline
and an ENOSPC store put into a 2-worker campaign, the run completes
without operator intervention, every non-poison candidate lands in the
store exactly once, poison candidates become structured failure
records, and a clean resume + export is byte-identical to a fault-free
run of the surviving candidates.
"""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    RetryPolicy,
    campaign_status,
    export_campaign,
)
from repro.campaign.store import KIND_CANDIDATE, ResultStore
from repro.core.sa import SASettings
from repro.dse import DesignSpaceExplorer, DseGrid, Workload, enumerate_candidates
from repro.errors import SearchError
from repro.obs.ledger import LEDGER_NAME, read_ledger
from repro.perf import PERF
from repro.testing import parse_chaos
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType

#: Generous per-attempt deadline: far above a tiny-campaign evaluation
#: (~0.5s), far below the injected 45s hang.
DEADLINE_S = 6.0


def tiny_graph(n=3):
    g = DNNGraph("tiny")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


def small_candidates():
    grid = DseGrid(
        tops=8, cuts=(1, 2), dram_bw_per_tops=(1.0,), noc_bw_gbps=(32,),
        d2d_ratio=(0.5,), glb_kb=(512, 1024), macs_per_core=(1024,),
    )
    return enumerate_candidates(grid)


def make_spec(name="camp", candidates=None):
    return CampaignSpec(
        name=name,
        candidates=small_candidates() if candidates is None
        else candidates,
        workloads=[Workload(tiny_graph(), batch=2)],
        sa=SASettings(iterations=6, seed=11),
        warm_start=False,  # keys independent of store history
    )


def export_bytes(home, name):
    paths = export_campaign(home, name)
    return {label: path.read_bytes() for label, path in paths.items()}


N = len(small_candidates())


def run_clean(home, candidates=None):
    """A fault-free reference run in its own home."""
    with CampaignRunner(make_spec(candidates=candidates), home) as runner:
        return runner.run(workers=1)


def events_named(home, name, event):
    events, _ = read_ledger(home / name / LEDGER_NAME)
    return [ev for ev in events if ev.get("event") == event]


class TestCrashRecovery:
    def test_worker_sigkill_recovers_and_exports_identically(self, tmp_path):
        clean, faulty = tmp_path / "clean", tmp_path / "faulty"
        run_clean(clean)

        PERF.reset()
        plan = parse_chaos("crash:1")  # SIGKILL candidate 1's 1st attempt
        with CampaignRunner(make_spec(), faulty) as runner:
            report = runner.run(
                workers=2, policy=RetryPolicy(max_attempts=3), chaos=plan,
            )
        assert report.evaluated == N
        assert report.failed == 0
        assert report.quarantined == 0
        assert PERF.get("dse.pool.worker_deaths") >= 1

        # The crash is visible in the ledger, and the retried candidate
        # carries its attempt count in the store (provenance only).
        assert events_named(faulty, "camp", "worker_died")
        assert events_named(faulty, "camp", "pool_respawned")
        with CampaignRunner(make_spec(), faulty) as runner:
            rec = runner.store.get(
                KIND_CANDIDATE, runner.candidate_keys[1]
            )
        assert rec["attempts"] >= 2

        # Clean resume: nothing re-evaluates; export is bit-identical.
        PERF.reset()
        with CampaignRunner(make_spec(), faulty) as runner:
            resumed = runner.run(workers=1)
        assert resumed.evaluated == 0
        assert resumed.store_hits == N
        assert PERF.get("dse.candidates") == 0
        assert export_bytes(clean, "camp") == export_bytes(faulty, "camp")


class TestTimeouts:
    def test_hang_past_deadline_times_out_and_retries(self, tmp_path):
        clean, faulty = tmp_path / "clean", tmp_path / "faulty"
        run_clean(clean)

        PERF.reset()
        plan = parse_chaos("hang:0:1:45")  # candidate 0 hangs 45s once
        with CampaignRunner(make_spec(), faulty) as runner:
            report = runner.run(
                workers=2,
                policy=RetryPolicy(max_attempts=3, timeout_s=DEADLINE_S),
                chaos=plan,
            )
        assert report.evaluated == N
        assert report.quarantined == 0
        assert PERF.get("campaign.timeouts") >= 1
        assert PERF.get("campaign.retries") >= 1
        assert events_named(faulty, "camp", "candidate_timeout")
        assert export_bytes(clean, "camp") == export_bytes(faulty, "camp")


class TestQuarantine:
    def test_poison_candidate_is_quarantined_and_skipped(self, tmp_path):
        home = tmp_path / "faulty"
        survivors_home = tmp_path / "survivors"
        # Poison the LAST candidate so the surviving indices line up
        # with a fault-free campaign over just the survivors.
        plan = parse_chaos(f"crash:{N - 1}:9")  # crashes every attempt
        PERF.reset()
        with CampaignRunner(make_spec(), home) as runner:
            report = runner.run(
                workers=2, policy=RetryPolicy(max_attempts=2), chaos=plan,
            )
            poison_key = runner.candidate_keys[N - 1]
        assert report.evaluated == N - 1
        assert report.quarantined == 1
        assert report.failed == 1
        assert report.results[N - 1] is None
        assert PERF.get("campaign.quarantined") == 1

        # The quarantine is a structured failure record in the store.
        with ResultStore(home / "store") as store:
            assert store.quarantined_keys(KIND_CANDIDATE) == {poison_key}
            assert store.failed_keys(KIND_CANDIDATE) == set()
            rec = store.get("failure", poison_key)
        assert rec["poison"] is True
        assert rec["cause"] == "crash"
        assert rec["attempts"] == 2
        assert "WorkerCrashed" in rec["error"]
        (ev,) = events_named(home, "camp", "candidate_quarantined")
        assert ev["cause"] == "crash"
        assert ev["attempts"] == 2

        # Status accounts for it; resume skips it without chaos armed.
        status = campaign_status(home, "camp")
        assert status["quarantined"] == 1
        assert status["pending"] == 0
        assert status["done"] == N - 1
        PERF.reset()
        with CampaignRunner(make_spec(), home) as runner:
            resumed = runner.run(workers=1)
        assert resumed.evaluated == 0
        assert resumed.store_hits == N - 1
        assert resumed.quarantined == 1
        assert PERF.get("dse.candidates") == 0

        # Export equals a fault-free campaign over the survivors.
        run_clean(survivors_home, candidates=small_candidates()[:N - 1])
        assert export_bytes(home, "camp") == export_bytes(
            survivors_home, "camp"
        )

    def test_retry_quarantined_opts_back_in(self, tmp_path):
        home = tmp_path / "camp"
        plan = parse_chaos(f"crash:{N - 1}:9")
        with CampaignRunner(make_spec(), home) as runner:
            runner.run(workers=2, policy=RetryPolicy(max_attempts=2),
                       chaos=plan)
        # Chaos gone (the "code fix"): the poison candidate now passes.
        with CampaignRunner(make_spec(), home) as runner:
            report = runner.run(workers=1, retry_quarantined=True)
        assert report.evaluated == 1
        assert report.quarantined == 0  # success supersedes the poison
        assert all(r is not None for r in report.results)
        assert campaign_status(home, "camp")["quarantined"] == 0


class TestStoreFaults:
    def test_enospc_put_is_retried_on_a_fresh_segment(self, tmp_path):
        clean, faulty = tmp_path / "clean", tmp_path / "faulty"
        run_clean(clean)

        PERF.reset()
        plan = parse_chaos("enospc:2")  # 2nd put of the run fails once
        with CampaignRunner(make_spec(), faulty) as runner:
            report = runner.run(workers=1, chaos=plan)
        assert report.evaluated == N
        assert report.failed == 0
        assert PERF.get("campaign.store_put_retries") == 1
        assert PERF.get("store.put.errors") == 1
        assert events_named(faulty, "camp", "store_put_retried")
        # The failed put abandoned its segment for a fresh one.
        segments = list((faulty / "store" / "segments").glob("*.jsonl"))
        assert len(segments) >= 2
        assert export_bytes(clean, "camp") == export_bytes(faulty, "camp")

    def test_torn_write_cannot_corrupt_a_later_record(self, tmp_path):
        clean, faulty = tmp_path / "clean", tmp_path / "faulty"
        run_clean(clean)

        plan = parse_chaos("torn:2")  # half a record, then EIO
        with CampaignRunner(make_spec(), faulty) as runner:
            report = runner.run(workers=1, chaos=plan)
        assert report.evaluated == N
        # A fresh scan sees every record plus exactly one tolerated
        # torn line (the abandoned half-write on the rotated-away
        # segment) — the retry never concatenated onto it.
        with ResultStore(faulty / "store") as store:
            assert store.skipped_lines == 1
            assert len(store.keys(KIND_CANDIDATE)) == N
        assert export_bytes(clean, "camp") == export_bytes(faulty, "camp")


class TestAcceptance:
    def test_combined_chaos_plan_2_workers(self, tmp_path):
        """ISSUE 9 acceptance: SIGKILL + hang + ENOSPC, one 2-worker run."""
        clean, faulty = tmp_path / "clean", tmp_path / "faulty"
        run_clean(clean)

        PERF.reset()
        plan = parse_chaos("crash:1,hang:0:1:45,enospc:2")
        with CampaignRunner(make_spec(), faulty) as runner:
            report = runner.run(
                workers=2,
                policy=RetryPolicy(max_attempts=3, timeout_s=DEADLINE_S),
                chaos=plan,
            )
            keys = list(runner.candidate_keys)
        # Completes without intervention; nothing is poison here.
        assert report.evaluated == N
        assert report.failed == 0
        assert report.quarantined == 0
        assert PERF.get("dse.pool.worker_deaths") >= 1
        assert PERF.get("campaign.store_put_retries") >= 1

        # Every non-poison candidate evaluated exactly once: one
        # checkpoint event per candidate key.
        evaluated = events_named(faulty, "camp", "candidate_evaluated")
        assert sorted(ev["key"] for ev in evaluated) == sorted(keys)

        # Clean resume re-evaluates zero candidates...
        PERF.reset()
        with CampaignRunner(make_spec(), faulty) as runner:
            resumed = runner.run(workers=1)
        assert resumed.evaluated == 0
        assert resumed.store_hits == N
        assert PERF.get("dse.candidates") == 0
        # ... and the export is byte-identical to the fault-free run.
        assert export_bytes(clean, "camp") == export_bytes(faulty, "camp")


class TestHealthSurfaces:
    def test_watch_and_report_surface_fault_health(self, tmp_path):
        from repro.obs.diag import campaign_report_data, render_campaign_report
        from repro.obs.watch import render_watch, watch_snapshot

        home = tmp_path / "camp"
        plan = parse_chaos(f"crash:{N - 1}:9")
        with CampaignRunner(make_spec(), home) as runner:
            runner.run(workers=2, policy=RetryPolicy(max_attempts=2),
                       chaos=plan)

        snap = watch_snapshot(home, "camp")
        assert snap["faults"]["worker_deaths"] >= 1
        assert snap["faults"]["quarantined"] == 1
        assert snap["faults"]["pool_respawns"] >= 1
        assert snap["status"]["quarantined"] == 1
        frame = render_watch(snap)
        assert "faults:" in frame
        assert "1 quarantined" in frame
        assert "poison" in frame  # shard health column

        data = campaign_report_data(home, "camp")
        assert [q["index"] for q in data["quarantined"]] == [N - 1]
        text = render_campaign_report(data)
        assert "quarantined (poison) candidates" in text
        assert "--retry-quarantined" in text


class TestPoolDrain:
    def test_map_tasks_yields_results_before_a_chunk_mate_fails(self):
        """One failing task must not take its chunk-mates' already
        computed results down with it (the old ``Executor.map`` path
        lost the whole chunk)."""
        from repro.dse import explorer as explorer_mod

        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=4, seed=11),
        )
        tasks = [(i, a, None) for i, a in enumerate(small_candidates())]

        def hook(index, attempt):
            if index == 2:
                raise SearchError("injected chunk-mate failure")

        explorer_mod._EVAL_HOOK = hook
        try:
            pool = explorer.pool(2)
            # One chunk holding all tasks: the failure sits mid-chunk.
            stream = pool.map_tasks(tasks, chunksize=len(tasks))
            got = []
            with pytest.raises(SearchError, match="chunk-mate"):
                for result, _snapshot in stream:
                    got.append(result)
            assert len(got) == 2  # tasks 0 and 1 survived task 2's error
            assert [r.arch for r in got] == [t[1] for t in tasks[:2]]
        finally:
            explorer_mod._EVAL_HOOK = None
            explorer.close()
