"""Tests for the DSE driver, candidate grid and chiplet reuse."""

import pytest

from repro.arch import ArchConfig, g_arch, s_arch
from repro.core.sa import SASettings
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    JointExplorer,
    OBJECTIVE_DELAY,
    OBJECTIVE_ENERGY,
    OBJECTIVE_MC,
    OBJECTIVE_MCED,
    Objective,
    Workload,
    candidate_from,
    enumerate_candidates,
    geomean,
    scale_with_chiplets,
)
from repro.units import GB, KB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def tiny_graph(n=3):
    g = DNNGraph("tiny")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


class TestCandidates:
    def test_paper_72tops_grid_includes_g_arch_shape(self):
        grid = DseGrid.paper_grid(72)
        candidates = enumerate_candidates(grid)
        target = g_arch()
        found = [
            c for c in candidates
            if (c.n_chiplets, c.n_cores, c.glb_bytes, c.macs_per_core) ==
               (2, 36, target.glb_bytes, 1024)
            and c.noc_bw == target.noc_bw and c.d2d_bw == target.d2d_bw
            and c.dram_bw == target.dram_bw
        ]
        assert found

    def test_invalid_mac_choice_skipped(self):
        # 72 TOPs with 8192 MACs/core would need 4.5 cores.
        assert candidate_from(72, 8192, 1, 1, 1.0, 32, 1.0, 1024) is None

    def test_cut_must_divide_edge(self):
        # 36 cores arrange 6x6; XCut=4 does not divide 6.
        assert candidate_from(72, 1024, 4, 1, 1.0, 32, 1.0, 1024) is None

    def test_monolithic_candidates_deduplicated(self):
        grid = DseGrid(
            tops=72, cuts=(1,), dram_bw_per_tops=(1.0,), noc_bw_gbps=(32,),
            d2d_ratio=(0.25, 0.5, 1.0), glb_kb=(1024,), macs_per_core=(1024,),
        )
        assert len(enumerate_candidates(grid)) == 1

    def test_grid_counts_are_plausible(self):
        grid = DseGrid.paper_grid(72)
        candidates = enumerate_candidates(grid)
        assert len(candidates) > 500
        tops = {round(c.tops) for c in candidates}
        assert tops == {72}

    def test_128_tops_grid_uses_power_of_two_cuts(self):
        grid = DseGrid.paper_grid(128)
        assert grid.cuts == (1, 2, 4, 8)


class TestObjective:
    def test_score_shapes(self):
        assert OBJECTIVE_ENERGY.score(5.0, 2.0, 3.0) == 2.0
        assert OBJECTIVE_DELAY.score(5.0, 2.0, 3.0) == 3.0
        assert OBJECTIVE_MC.score(5.0, 2.0, 3.0) == 5.0
        assert OBJECTIVE_MCED.score(5.0, 2.0, 3.0) == 30.0

    def test_custom_exponents(self):
        obj = Objective(alpha=0.0, beta=2.0, gamma=1.0)
        assert obj.score(7.0, 2.0, 3.0) == pytest.approx(12.0)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([3.0]) == pytest.approx(3.0)


class TestExplorer:
    def make_candidates(self):
        grid = DseGrid(
            tops=8, cuts=(1, 2), dram_bw_per_tops=(1.0,), noc_bw_gbps=(32,),
            d2d_ratio=(0.5,), glb_kb=(512, 1024), macs_per_core=(1024,),
        )
        return enumerate_candidates(grid)

    def test_explore_ranks_by_score(self):
        candidates = self.make_candidates()
        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=0),
        )
        report = explorer.explore(candidates)
        assert report.best.score == min(r.score for r in report.results)
        assert len(report.results) == len(candidates)

    def test_per_workload_records(self):
        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2), Workload(tiny_graph(2), batch=1)],
            sa_settings=SASettings(iterations=0),
        )
        result = explorer.evaluate_candidate(self.make_candidates()[0])
        assert len(result.per_workload) == 2
        assert result.energy > 0 and result.delay > 0

    def test_grouping_helpers(self):
        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=1)],
            sa_settings=SASettings(iterations=0),
        )
        report = explorer.explore(self.make_candidates())
        by_chiplets = report.by_chiplet_count()
        assert set(by_chiplets) >= {1, 2}

    def test_requires_workloads(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer([])


class TestChipletReuse:
    def test_scale_up_doubles_chiplets(self):
        base = g_arch()  # 2 chiplets, 72 TOPs
        scaled = scale_with_chiplets(base, 144)
        assert scaled is not None
        assert scaled.n_chiplets == 4
        assert scaled.tops == pytest.approx(144)
        assert scaled.cores_per_chiplet == base.cores_per_chiplet
        assert scaled.glb_bytes == base.glb_bytes

    def test_scale_down_to_single_chiplet(self):
        base = g_arch()
        scaled = scale_with_chiplets(base, 36)
        assert scaled is not None
        assert scaled.n_chiplets == 1

    def test_non_integer_ratio_rejected(self):
        assert scale_with_chiplets(g_arch(), 100) is None

    def test_dram_scales_with_tops(self):
        base = g_arch()
        scaled = scale_with_chiplets(base, 144)
        assert scaled.dram_bw == pytest.approx(2 * base.dram_bw)

    def test_simba_chiplet_scales(self):
        # Simba: 36 single-core chiplets of 2 TOPs each.
        scaled = scale_with_chiplets(s_arch(), 128)
        assert scaled is not None
        assert scaled.n_chiplets == 64

    def test_joint_explorer_prefers_valid_base(self):
        base = ArchConfig(
            cores_x=2, cores_y=2, xcut=2, ycut=1, dram_bw=8 * GB,
            noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=512 * KB,
            macs_per_core=1024,
        )  # 8 TOPs, 2 chiplets of 4 TOPs
        wl = [Workload(tiny_graph(2), batch=1)]
        explorer = JointExplorer(
            {8.0: wl, 16.0: wl},
            sa_settings=SASettings(iterations=0),
        )
        report = explorer.explore([base])
        assert report.best.base == base
        assert set(report.best.per_level) == {8.0, 16.0}
        for level, result in report.best.per_level.items():
            assert result.arch.tops == pytest.approx(level)
