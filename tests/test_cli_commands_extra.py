"""Heavier CLI command tests (small budgets) and operator reachability."""

import random

from repro.arch import ArchConfig
from repro.cli import main
from repro.core import LayerGroup
from repro.core.initial import initial_lms
from repro.core.operators import op5_change_flow
from repro.units import GB, MB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


class TestCliHeatmap:
    def test_heatmap_command_renders_both_schemes(self, capsys):
        code = main([
            "heatmap", "--model", "TF", "--arch", "g-arch",
            "--batch", "8", "--iters", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Tangram SPM" in out
        assert "Gemini SPM" in out
        assert "total_hop_bytes" in out


class TestCliDse:
    def test_dse_writes_results(self, tmp_path, capsys):
        # The quick 72-TOPs grid with a minimal SA budget.
        code = main([
            "dse", "--tops", "72", "--models", "TF", "--batch", "4",
            "--iters", "2", "--out", str(tmp_path / "log"),
        ])
        assert code == 0
        assert (tmp_path / "log" / "result.csv").exists()
        assert (tmp_path / "log" / "best_arch.json").exists()
        out = capsys.readouterr().out
        assert "best architecture:" in out


class TestOp5Reachability:
    """OP5 can reach every FD value in [0, D] for every explicit slot."""

    def test_all_fd_values_reachable(self):
        g = DNNGraph("g")
        g.add_layer(Layer("a", LayerType.CONV, out_h=8, out_w=8,
                          out_k=8, in_c=3))
        group = LayerGroup(("a",), batch_unit=1)
        arch = ArchConfig(
            cores_x=2, cores_y=2, xcut=1, ycut=1, dram_bw=96 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=1 * MB,
            macs_per_core=1024,
        )
        lms = initial_lms(g, group, arch)
        rng = random.Random(0)
        seen = {"ifmap": set(), "weight": set(), "ofmap": set()}
        current = lms
        for _ in range(300):
            out = op5_change_flow(g, current, rng, n_dram=arch.n_dram)
            if out is not None:
                current = out
            fd = current.scheme("a").fd
            for field in seen:
                value = getattr(fd, field)
                if value >= 0:
                    seen[field].add(value)
        for field, values in seen.items():
            assert values == set(range(arch.n_dram + 1)), field
