"""Metrics export: Prometheus exposition and JSON forms of a snapshot."""

import json

from repro.obs.metrics import (
    _metric_name,
    metrics_json,
    prometheus_text,
    write_metrics,
)

SNAP = {
    "pid": 1234,
    "counters": {
        "dse.candidates": 4,
        "store.hits": 2,
        "weird name!*": 1.5,
    },
    "timers": {
        "sa.run": {"seconds": 2.5, "calls": 3},
    },
    "spans": [{"name": "x"}],
}


class TestNames:
    def test_sanitize_keeps_prometheus_charset(self):
        assert _metric_name("dse.candidates") == "repro_dse_candidates"
        assert _metric_name("weird name!*") == "repro_weird_name__"
        assert _metric_name("lru.route-cache.hits") == \
            "repro_lru_route_cache_hits"


class TestPrometheusText:
    def test_counters_and_timers_become_samples(self):
        text = prometheus_text(SNAP)
        lines = text.splitlines()
        assert "repro_dse_candidates 4" in lines
        assert "repro_store_hits 2" in lines
        assert "repro_weird_name__ 1.5" in lines
        assert "repro_sa_run_seconds_total 2.5" in lines
        assert "repro_sa_run_calls_total 3" in lines
        # integers print without a trailing .0
        assert "repro_dse_candidates 4.0" not in lines

    def test_every_sample_has_help_and_type(self):
        lines = prometheus_text(SNAP).splitlines()
        samples = [ln for ln in lines if not ln.startswith("#")]
        helps = [ln for ln in lines if ln.startswith("# HELP ")]
        types = [ln for ln in lines if ln.startswith("# TYPE ")]
        assert len(samples) == len(helps) == len(types) == 5
        assert all(ln.endswith(" counter") for ln in types)

    def test_output_is_deterministic_and_sorted(self):
        a = prometheus_text(SNAP)
        b = prometheus_text(dict(SNAP))
        assert a == b
        samples = [ln.split()[0] for ln in a.splitlines()
                   if not ln.startswith("#")]
        # Counters come first (sorted), then per-timer sample pairs
        # (labels sorted, seconds before calls).
        assert samples == [
            "repro_dse_candidates", "repro_store_hits",
            "repro_weird_name__",
            "repro_sa_run_seconds_total", "repro_sa_run_calls_total",
        ]

    def test_spans_and_pid_never_leak(self):
        text = prometheus_text(SNAP)
        assert "span" not in text
        assert "1234" not in text

    def test_empty_snapshot_is_empty_text(self):
        assert prometheus_text({"counters": {}, "timers": {}}) == ""


class TestJsonAndFiles:
    def test_metrics_json_strips_spans_and_pid(self):
        data = json.loads(metrics_json(SNAP))
        assert set(data) == {"counters", "timers"}
        assert data["counters"]["dse.candidates"] == 4
        assert data["timers"]["sa.run"]["calls"] == 3
        assert metrics_json(SNAP) == metrics_json(dict(SNAP))

    def test_write_metrics_dispatches_on_suffix(self, tmp_path):
        prom = tmp_path / "m.prom"
        txt = tmp_path / "m.txt"
        js = tmp_path / "m.json"
        for p in (prom, txt, js):
            write_metrics(p, SNAP)
        assert prom.read_text().startswith("# HELP ")
        assert txt.read_text() == prom.read_text()
        assert json.loads(js.read_text())["counters"]["store.hits"] == 2
