"""The deterministic chaos harness and the retry-policy math.

The harness exists so fault-recovery tests are *reproducible*: every
fault is a pure function of its schedule inputs (candidate index +
attempt for evaluation faults, put ordinal for store faults), never of
wall-clock or randomness.  These tests pin that purity, the spec
round-trip, and the hook seams the production modules expose.
"""

import errno
import io
import time

import pytest

from repro.campaign.faults import FaultPolicyError, RetryPolicy
from repro.testing import (
    ChaosError,
    ChaosFault,
    ChaosPlan,
    format_chaos,
    parse_chaos,
)


class TestParse:
    def test_round_trip(self):
        spec = "crash:1:2,hang:0:1:45,enospc:2,torn:5"
        plan = parse_chaos(spec, seed=7)
        assert format_chaos(plan) == spec
        assert plan.seed == 7
        assert [f.kind for f in plan.faults] == [
            "crash", "hang", "enospc", "torn",
        ]

    def test_defaults(self):
        plan = parse_chaos("crash:3")
        (fault,) = plan.faults
        assert fault == ChaosFault("crash", 3, count=1, seconds=None)

    def test_seconds_without_count(self):
        plan = parse_chaos("slow:2:1:0.25")
        assert plan.faults[0].seconds == 0.25
        assert format_chaos(plan) == "slow:2:1:0.25"

    @pytest.mark.parametrize("bad", [
        "", "crash", "crash:x", "boom:1", "crash:-1", "crash:1:0",
        "crash:1:1:-2", "crash:1:2:3:4",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ChaosError):
            parse_chaos(bad)

    def test_whitespace_and_blank_parts_tolerated(self):
        plan = parse_chaos(" crash:1 , ,hang:2 ")
        assert len(plan.faults) == 2


class TestSchedule:
    def test_eval_fault_is_pure_and_attempt_bounded(self):
        plan = parse_chaos("crash:1:2")
        assert plan.eval_fault(1, 1) is not None
        assert plan.eval_fault(1, 2) is not None
        assert plan.eval_fault(1, 3) is None  # third attempt survives
        assert plan.eval_fault(0, 1) is None
        # Pure: repeated lookups agree (no hidden state).
        assert plan.eval_fault(1, 1) == plan.eval_fault(1, 1)

    def test_store_fault_targets_put_ordinal(self):
        plan = parse_chaos("enospc:2,torn:4")
        assert plan.store_fault(1) is None
        assert plan.store_fault(2).kind == "enospc"
        assert plan.store_fault(4).kind == "torn"

    def test_slow_seconds_is_seeded_and_deterministic(self):
        a = ChaosPlan([ChaosFault("slow", 0)], seed=3)
        b = ChaosPlan([ChaosFault("slow", 0)], seed=3)
        assert a.slow_seconds(2) == b.slow_seconds(2)
        assert a.slow_seconds(0) != a.slow_seconds(1)


class TestFiring:
    def test_fire_eval_noop_without_matching_fault(self):
        plan = parse_chaos("crash:7")
        start = time.monotonic()
        plan.fire_eval(0, 1)  # no fault armed for candidate 0
        assert time.monotonic() - start < 0.5

    def test_fire_eval_sleeps_for_hang_and_slow(self):
        plan = parse_chaos("hang:0:1:0.05,slow:1:1:0.05")
        start = time.monotonic()
        plan.fire_eval(0, 1)
        plan.fire_eval(1, 1)
        assert time.monotonic() - start >= 0.1

    def test_fire_put_enospc_writes_nothing(self):
        plan = parse_chaos("enospc:1")
        fh = io.StringIO()
        with pytest.raises(OSError) as exc:
            plan.fire_put(fh, '{"kind":"x"}')
        assert exc.value.errno == errno.ENOSPC
        assert fh.getvalue() == ""

    def test_fire_put_torn_leaves_half_a_line(self):
        plan = parse_chaos("torn:1")
        fh = io.StringIO()
        line = '{"kind":"candidate","key":"k","payload":{}}'
        with pytest.raises(OSError) as exc:
            plan.fire_put(fh, line)
        assert exc.value.errno == errno.EIO
        assert fh.getvalue() == line[: len(line) // 2]
        assert "\n" not in fh.getvalue()

    def test_put_counter_advances_past_clean_puts(self):
        plan = parse_chaos("enospc:3")
        fh = io.StringIO()
        plan.fire_put(fh, "a")  # put 1
        plan.fire_put(fh, "b")  # put 2
        with pytest.raises(OSError):
            plan.fire_put(fh, "c")  # put 3 fires
        plan.fire_put(fh, "d")  # put 4: store faults fire once


class TestInstall:
    def test_install_arms_both_seams_and_uninstall_clears(self):
        from repro.campaign import store as store_mod
        from repro.dse import explorer as explorer_mod

        plan = parse_chaos("crash:1")
        assert explorer_mod._EVAL_HOOK is None
        assert store_mod._PUT_HOOK is None
        with plan:
            assert explorer_mod._EVAL_HOOK is not None
            assert store_mod._PUT_HOOK is not None
        assert explorer_mod._EVAL_HOOK is None
        assert store_mod._PUT_HOOK is None

    def test_uninstall_never_clobbers_a_foreign_hook(self):
        from repro.dse import explorer as explorer_mod

        plan = parse_chaos("crash:1")
        plan.install()
        other = parse_chaos("hang:0")
        other.install()  # replaces plan's hooks
        plan.uninstall()  # must leave other's hooks armed
        assert explorer_mod._EVAL_HOOK is not None
        other.uninstall()
        assert explorer_mod._EVAL_HOOK is None


class TestRetryPolicy:
    def test_defaults_are_single_attempt_no_deadline(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.timeout_s is None
        assert not policy.needs_supervision

    def test_timeout_forces_supervision(self):
        assert RetryPolicy(timeout_s=5.0).needs_supervision

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
        {"backoff_s": -0.1},
        {"store_backoff_s": -0.1},
        {"store_attempts": 0},
        {"jitter": 1.5},
    ])
    def test_malformed_policies_rejected(self, kwargs):
        with pytest.raises(FaultPolicyError):
            RetryPolicy(**kwargs)

    def test_delay_is_deterministic_per_seed_key_attempt(self):
        a = RetryPolicy(backoff_s=0.1, seed=5)
        b = RetryPolicy(backoff_s=0.1, seed=5)
        assert a.delay_s("k", 2) == b.delay_s("k", 2)
        assert a.delay_s("k", 2) != a.delay_s("k", 3)
        assert a.delay_s("k", 2) != a.delay_s("other", 2)
        c = RetryPolicy(backoff_s=0.1, seed=6)
        assert a.delay_s("k", 2) != c.delay_s("k", 2)

    def test_delay_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=2.0, jitter=0.1)
        d2 = policy.delay_s("k", 2)
        d4 = policy.delay_s("k", 4)
        assert 0.09 <= d2 <= 0.11          # 0.1 * (1 +/- 0.1)
        assert 0.36 <= d4 <= 0.44          # 0.4 * (1 +/- 0.1)

    def test_first_attempt_and_zero_backoff_have_no_delay(self):
        assert RetryPolicy(backoff_s=0.1).delay_s("k", 1) == 0.0
        assert RetryPolicy(backoff_s=0.0).delay_s("k", 5) == 0.0

    def test_jitter_u_is_bounded(self):
        policy = RetryPolicy()
        for attempt in range(2, 20):
            u = policy.jitter_u("key", attempt)
            assert -1.0 <= u < 1.0
