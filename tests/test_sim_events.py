"""Tests for the discrete-event round simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchConfig, MeshTopology, g_arch
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.sim import (
    RoundSimulator,
    SimMessage,
    simulate_group_round,
)
from repro.units import GB, MB
from repro.workloads.models import build


def topo4():
    arch = ArchConfig(
        cores_x=4, cores_y=1, xcut=1, ycut=1, dram_bw=32 * GB,
        noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=1 * MB,
        macs_per_core=1024,
    )
    return MeshTopology(arch)


class TestRoundSimulator:
    def test_compute_only(self):
        topo = topo4()
        stats = RoundSimulator(topo).simulate({0: 1.5, 1: 2.0}, [])
        assert stats.makespan == 2.0
        assert stats.delivery_finish == 0.0

    def test_single_message_latency(self):
        topo = topo4()
        msg = SimMessage(("core", 0, 0), ("core", 1, 0), 32 * GB)
        stats = RoundSimulator(topo).simulate({}, [msg])
        assert stats.makespan == pytest.approx(1.0)
        assert stats.message_latencies == [pytest.approx(1.0)]

    def test_store_and_forward_adds_per_hop_delay(self):
        topo = topo4()
        msg = SimMessage(("core", 0, 0), ("core", 3, 0), 32 * GB)
        stats = RoundSimulator(topo).simulate({}, [msg])
        # 3 hops, each serializing the full volume.
        assert stats.makespan == pytest.approx(3.0)

    def test_fifo_queueing_on_shared_link(self):
        topo = topo4()
        msgs = [
            SimMessage(("core", 0, 0), ("core", 1, 0), 32 * GB),
            SimMessage(("core", 0, 0), ("core", 1, 0), 32 * GB),
        ]
        stats = RoundSimulator(topo).simulate({}, msgs)
        assert stats.makespan == pytest.approx(2.0)

    def test_ready_at_delays_injection(self):
        topo = topo4()
        msg = SimMessage(("core", 0, 0), ("core", 1, 0), 32 * GB,
                         ready_at=5.0)
        stats = RoundSimulator(topo).simulate({}, [msg])
        assert stats.makespan == pytest.approx(6.0)

    def test_zero_volume_ignored(self):
        topo = topo4()
        stats = RoundSimulator(topo).simulate(
            {}, [SimMessage(("core", 0, 0), ("core", 1, 0), 0.0)]
        )
        assert stats.makespan == 0.0

    def test_same_node_message_ignored(self):
        topo = topo4()
        stats = RoundSimulator(topo).simulate(
            {}, [SimMessage(("core", 0, 0), ("core", 0, 0), 100.0)]
        )
        assert stats.makespan == 0.0

    def test_link_busy_accounting(self):
        topo = topo4()
        msg = SimMessage(("core", 0, 0), ("core", 1, 0), 16 * GB)
        stats = RoundSimulator(topo).simulate({}, [msg])
        assert sum(stats.link_busy.values()) == pytest.approx(0.5)
        assert stats.max_link_utilization() == pytest.approx(1.0)


class TestGroupRoundSimulation:
    def test_makespan_upper_bounds_analytic_stage(self):
        graph = build("TF")
        arch = g_arch()
        groups = partition_graph(graph, arch, batch=8)
        for group in groups[:4]:
            lms = initial_lms(graph, group, arch)
            stats, analytic = simulate_group_round(graph, arch, lms)
            # Store-and-forward with queueing can only be slower than
            # the fluid most-loaded-link bound.
            assert stats.makespan >= analytic * (1 - 1e-9)

    def test_simulation_is_deterministic(self):
        graph = build("TF")
        arch = g_arch()
        group = partition_graph(graph, arch, batch=8)[1]
        lms = initial_lms(graph, group, arch)
        a, _ = simulate_group_round(graph, arch, lms)
        b, _ = simulate_group_round(graph, arch, lms)
        assert a.makespan == b.makespan

    def test_congested_scheme_simulates_slower(self):
        """A scheme that funnels everything through one column should
        simulate slower than the same layers spread by the heuristic."""
        graph = build("TF")
        arch = g_arch()
        group = partition_graph(graph, arch, batch=8)[1]
        lms = initial_lms(graph, group, arch)
        stats, analytic = simulate_group_round(graph, arch, lms)
        assert stats.delivery_finish > 0


@settings(max_examples=15, deadline=None)
@given(
    volumes=st.lists(st.floats(1e3, 1e8), min_size=1, max_size=10),
    seed=st.integers(0, 999),
)
def test_makespan_bounds_property(volumes, seed):
    """serial-total/bw >= makespan >= max single-message time."""
    import random

    topo = topo4()
    rng = random.Random(seed)
    cores = topo.core_nodes()
    msgs = []
    for v in volumes:
        a, b = rng.sample(range(len(cores)), 2)
        msgs.append(SimMessage(cores[a], cores[b], v))
    stats = RoundSimulator(topo).simulate({}, msgs)
    bw = 32 * GB
    longest_single = max(
        len(topo.route(m.src, m.dst)) * m.volume / bw for m in msgs
    )
    serial_everything = sum(
        len(topo.route(m.src, m.dst)) * m.volume / bw for m in msgs
    )
    assert stats.makespan >= longest_single * (1 - 1e-9)
    assert stats.makespan <= serial_everything * (1 + 1e-9)
