"""Span tracer: nesting, bounds, the worker snapshot channel, export."""

import os

import pytest

from repro.core.sa import SASettings
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    Workload,
    enumerate_candidates,
)
from repro.obs.report import validate_chrome_trace
from repro.obs.trace import _NULL, TRACER, Tracer, trace
from repro.perf import PERF
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def tiny_graph(n=3):
    g = DNNGraph("tiny")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


def small_candidates():
    grid = DseGrid(
        tops=8, cuts=(1, 2), dram_bw_per_tops=(1.0,), noc_bw_gbps=(32,),
        d2d_ratio=(0.5,), glb_kb=(512, 1024), macs_per_core=(1024,),
    )
    return enumerate_candidates(grid)


@pytest.fixture
def tracer():
    """The global tracer, enabled for one test and restored after."""
    was = TRACER.enabled
    TRACER.clear()
    TRACER.enable()
    yield TRACER
    TRACER.enabled = was
    TRACER.clear()


class TestSpans:
    def test_disabled_trace_is_a_shared_noop(self):
        assert not TRACER.enabled
        cm = trace("anything", k=1)
        assert cm is _NULL
        assert trace("other") is _NULL
        with cm:
            pass
        assert TRACER.spans == []

    def test_nested_spans_link_parent_and_keep_attrs(self, tracer):
        with trace("outer", stage="a"):
            with trace("inner", k=3):
                pass
        inner, outer = tracer.spans
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert outer["parent"] == -1
        assert inner["parent"] == outer["sid"]
        assert inner["attrs"] == {"k": 3}
        assert outer["attrs"] == {"stage": "a"}
        assert inner["pid"] == outer["pid"] == os.getpid()
        assert inner["dur"] >= 0 and inner["cpu"] >= 0
        assert outer["dur"] >= inner["dur"]

    def test_siblings_share_a_parent(self, tracer):
        with trace("root"):
            with trace("a"):
                pass
            with trace("b"):
                pass
        a, b, root = tracer.spans
        assert a["parent"] == root["sid"]
        assert b["parent"] == root["sid"]
        assert a["sid"] != b["sid"]

    def test_bounded_buffer_drops_newest_and_counts(self):
        local = Tracer(max_spans=2)
        local.enable()
        before = PERF.get("obs.trace.dropped")
        for i in range(4):
            with local.trace(f"s{i}"):
                pass
        assert len(local.spans) == 2
        assert local.dropped == 2
        assert PERF.get("obs.trace.dropped") == before + 2
        assert [s["name"] for s in local.spans] == ["s0", "s1"]


class TestSnapshotChannel:
    def test_spans_ride_perf_snapshot_and_merge_preserves_pid(self, tracer):
        with trace("work", unit=1):
            pass
        snap = PERF.snapshot()
        assert snap["pid"] == os.getpid()
        assert [s["name"] for s in snap["spans"]] == ["work"]

        # A fake worker snapshot: same span, foreign pid.  merge() must
        # keep the worker's attribution, not re-stamp the parent's.
        worker_span = dict(snap["spans"][0], pid=424242)
        tracer.clear()
        PERF.merge({"counters": {}, "timers": {}, "spans": [worker_span]})
        assert len(tracer.spans) == 1
        assert tracer.spans[0]["pid"] == 424242
        assert tracer.spans[0]["attrs"] == {"unit": 1}

    def test_perf_reset_clears_the_span_buffer(self, tracer):
        with trace("gone"):
            pass
        assert tracer.spans
        PERF.reset()
        assert tracer.spans == []

    def test_disabled_tracer_ships_no_spans_key(self):
        assert not TRACER.enabled
        assert "spans" not in PERF.snapshot()


class TestChromeExport:
    def test_chrome_trace_shape_and_rebased_timestamps(self, tracer):
        with trace("outer"):
            with trace("inner"):
                pass
        doc = tracer.chrome_trace()
        events = validate_chrome_trace(doc)
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert min(e["ts"] for e in complete) == 0.0
        for e in complete:
            assert {"sid", "parent", "cpu_ms"} <= set(e["args"])
        assert meta and meta[0]["name"] == "process_name"
        assert any("main" in e["args"]["name"] for e in meta)
        assert doc["displayTimeUnit"] == "ms"

    def test_write_chrome_trace_is_loadable(self, tracer, tmp_path):
        import json

        with trace("x"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        validate_chrome_trace(json.loads(path.read_text()))


class TestParallelTracing:
    def test_parallel_explore_spans_cover_multiple_pids(self, tracer):
        """The acceptance property: a ``--trace`` of a 2-worker DSE run
        holds correctly parented spans from at least two pids."""
        candidates = small_candidates()
        with DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=6, seed=11),
        ) as explorer:
            explorer.explore(candidates, workers=2)

        events = [e for e in tracer.chrome_trace()["traceEvents"]
                  if e["ph"] == "X"]
        pids = {e["pid"] for e in events}
        parent_pid = os.getpid()
        assert parent_pid in pids
        assert len(pids) >= 2

        # The parent recorded the orchestration span...
        assert any(e["name"] == "dse.explore" and e["pid"] == parent_pid
                   for e in events)
        # ...and each worker's spans form a correctly parented chain:
        # candidate (root) -> map -> sa.restart -> sa.run.
        worker_pids = pids - {parent_pid}
        for wpid in worker_pids:
            spans = {e["args"]["sid"]: e for e in events
                     if e["pid"] == wpid}
            cands = [e for e in spans.values() if e["name"] == "candidate"]
            assert cands, f"worker {wpid} shipped no candidate span"
            for cand in cands:
                assert cand["args"]["parent"] == -1
            maps = [e for e in spans.values() if e["name"] == "map"]
            assert maps
            for m in maps:
                assert spans[m["args"]["parent"]]["name"] == "candidate"
            runs = [e for e in spans.values() if e["name"] == "sa.run"]
            assert runs
            for r in runs:
                assert spans[r["args"]["parent"]]["name"] == "sa.restart"
