"""Brute-force routing property tests for every registered fabric.

For every (source, destination) node pair of small instances of each
fabric x routing-policy combination:

* the route is *connected* (each hop's link starts where the previous
  ended) and every hop is a registered directed link;
* the route is *cycle-free* (no node — hence no link — revisited),
  which is what lets the traffic accumulators fancy-index add;
* the route length equals the fabric's exact distance (wrap-aware
  Manhattan for the torus, router-grid distance plus endpoint hops for
  the concentrated mesh, rotational distance for the ring);
* the deterministic policy is deadlock-free: dimension-ordered routing
  on wrap-free fabrics has an acyclic channel-dependency graph;
  ``dimension-reversal`` routes are always one of the two DOR routes
  (deadlock-free with one virtual channel per order); wrap fabrics
  never reverse rotational direction within a dimension (deadlock-free
  with a dateline virtual channel).
"""

import pytest

from repro.arch import ArchConfig, build_topology
from repro.fabric import apply_fabric
from repro.units import GB, MB


def arch(x=4, y=4, xcut=2, ycut=1, **kw):
    defaults = dict(
        cores_x=x, cores_y=y, xcut=xcut, ycut=ycut, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB,
        macs_per_core=1024,
    )
    defaults.update(kw)
    return ArchConfig(**defaults)


def topo_for(fabric: str, **archkw):
    return build_topology(apply_fabric(arch(**archkw), fabric))


def all_nodes(topo):
    return topo.core_nodes() + list(topo.dram_nodes())


def walk_route(topo, src, dst):
    """Validate connectivity/registration; return the node path."""
    route = topo.route(src, dst)
    nodes = [src]
    prev = src
    for idx in route:
        link = topo.links[idx]
        assert topo.link_between(link.src, link.dst) is link
        assert link.src == prev, f"disconnected route {src}->{dst}"
        prev = link.dst
        nodes.append(prev)
    assert prev == dst, f"route {src}->{dst} ends at {prev}"
    assert len(set(nodes)) == len(nodes), f"cycle in route {src}->{dst}"
    assert len(set(route)) == len(route)
    return nodes


def wrap_dist(a, b, size, wrap):
    return min((a - b) % size, (b - a) % size) if wrap else abs(a - b)


def check_all_routes(topo, core_distance):
    """Every pair routes validly; core pairs match the exact distance."""
    nodes = all_nodes(topo)
    for s in nodes:
        for d in nodes:
            walk_route(topo, s, d)
    for s in topo.core_nodes():
        for d in topo.core_nodes():
            assert len(topo.route(s, d)) == core_distance(s, d)


# ----------------------------------------------------------------------
# Distance / validity per fabric
# ----------------------------------------------------------------------


GRID_POLICIES = ("xy", "yx", "dimension-reversal")


@pytest.mark.parametrize("routing", GRID_POLICIES)
def test_mesh_routes_are_minimal(routing):
    topo = topo_for(f"mesh:{routing}" if routing != "xy" else "mesh",
                    x=5, y=3, xcut=1, ycut=1, d2d_bw=32 * GB)

    def dist(a, b):
        return abs(a[1] - b[1]) + abs(a[2] - b[2])

    check_all_routes(topo, dist)


@pytest.mark.parametrize("wrap", ("xy", "x", "y"))
def test_torus_routes_are_wrap_aware_minimal(wrap):
    topo = topo_for(f"folded-torus:wrap={wrap}" if wrap != "xy"
                    else "folded-torus", x=5, y=4, xcut=1, ycut=1,
                    d2d_bw=32 * GB)

    def dist(a, b):
        return (
            wrap_dist(a[1], b[1], topo.arch.cores_x, topo._wrap_x)
            + wrap_dist(a[2], b[2], topo.arch.cores_y, topo._wrap_y)
        )

    assert topo._wrap_x == ("x" in wrap)
    assert topo._wrap_y == ("y" in wrap)
    check_all_routes(topo, dist)


@pytest.mark.parametrize("routing", GRID_POLICIES)
def test_cmesh_routes_via_router_grid(routing):
    spec = "cmesh:c2" if routing == "xy" else f"cmesh:{routing}:c2"
    topo = topo_for(spec, x=6, y=4, xcut=2, ycut=1)
    c = topo.concentration

    def dist(a, b):
        if a == b:
            return 0
        ra = (a[1] // c, a[2] // c)
        rb = (b[1] // c, b[2] // c)
        return abs(ra[0] - rb[0]) + abs(ra[1] - rb[1]) + 2

    check_all_routes(topo, dist)


def test_ring_routes_take_shorter_direction():
    topo = topo_for("ring", x=4, y=3, xcut=1, ycut=1, d2d_bw=32 * GB)
    n = topo.arch.n_cores

    def dist(a, b):
        return wrap_dist(topo.core_index(a), topo.core_index(b), n, True)

    check_all_routes(topo, dist)


def test_dram_routes_end_on_io_links():
    for fabric in ("mesh", "folded-torus", "cmesh:c2", "ring"):
        topo = topo_for(fabric, x=4, y=4)
        for dram in topo.dram_nodes():
            for core in topo.core_nodes():
                to = topo.route(core, dram)
                fro = topo.route(dram, core)
                assert topo.links[to[-1]].is_io
                assert topo.links[fro[0]].is_io


# ----------------------------------------------------------------------
# Deadlock freedom
# ----------------------------------------------------------------------


def cdg_is_acyclic(topo) -> bool:
    """Channel-dependency graph over all node-pair routes is a DAG."""
    deps: dict[int, set[int]] = {}
    nodes = all_nodes(topo)
    for s in nodes:
        for d in nodes:
            route = topo.route(s, d)
            for a, b in zip(route, route[1:]):
                deps.setdefault(a, set()).add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = dict.fromkeys(range(topo.n_links), WHITE)
    for start in range(topo.n_links):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(deps.get(start, ()))))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GRAY:
                    return False
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(sorted(deps.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return True


@pytest.mark.parametrize("fabric", [
    "mesh", "mesh:yx", "cmesh:c2", "cmesh:yx:c2",
])
def test_dimension_order_routing_is_deadlock_free(fabric):
    topo = topo_for(fabric, x=4, y=4)
    assert cdg_is_acyclic(topo)


@pytest.mark.parametrize("fabric", ["mesh", "cmesh:c2"])
def test_dimension_reversal_routes_are_dor_routes(fabric):
    """Every DR route equals the XY or the YX route of the same pair,
    chosen deterministically by source parity — the two-VC O1TURN
    deadlock argument applies."""
    dr = topo_for(f"{fabric.split(':')[0]}:dimension-reversal"
                  + (":c2" if "c2" in fabric else ""), x=4, y=4)
    xy = topo_for(fabric, x=4, y=4)
    yx_spec = fabric.replace("mesh", "mesh:yx") if fabric == "mesh" \
        else "cmesh:yx:c2"
    yx = topo_for(yx_spec, x=4, y=4)
    for s in dr.core_nodes():
        for d in dr.core_nodes():
            route = dr.route(s, d)
            assert route in (xy.route(s, d), yx.route(s, d))
            # The order is picked by the *injecting router's* parity
            # (the router grid is the routed graph on the cmesh).
            entry = dr.router_of(s) if hasattr(dr, "router_of") else s
            expected = xy if (entry[1] + entry[2]) % 2 == 0 else yx
            assert route == expected.route(s, d)


@pytest.mark.parametrize("fabric,size", [
    ("folded-torus", (5, 4)), ("ring", (4, 3)),
])
def test_wrap_fabrics_never_reverse_direction(fabric, size):
    """Within a route, every dimension rotates one way only (the
    dateline-VC deadlock argument needs monotone rotation)."""
    x, y = size
    topo = topo_for(fabric, x=x, y=y, xcut=1, ycut=1, d2d_bw=32 * GB)
    for s in topo.core_nodes():
        for d in topo.core_nodes():
            steps: dict[str, set] = {"x": set(), "y": set(), "ring": set()}
            nodes = walk_route(topo, s, d)
            for a, b in zip(nodes, nodes[1:]):
                if fabric == "ring":
                    n = topo.arch.n_cores
                    delta = (topo.core_index(b) - topo.core_index(a)) % n
                    steps["ring"].add(delta)
                elif a[1] != b[1]:
                    steps["x"].add((b[1] - a[1]) % topo.arch.cores_x)
                else:
                    steps["y"].add((b[2] - a[2]) % topo.arch.cores_y)
            for moved in steps.values():
                assert len(moved) <= 1, f"direction reversal {s}->{d}"
