"""Unit tests for the Monetary Cost Evaluator (Sec V-C)."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchConfig, g_arch, s_arch, t_arch, g_arch_120
from repro.cost import (
    DEFAULT_MC,
    DramCostModel,
    PackagingModel,
    YieldModel,
)
from repro.units import GB, MB


def arch_with_cuts(xcut, ycut, d2d=16 * GB):
    return ArchConfig(
        cores_x=8, cores_y=8, xcut=xcut, ycut=ycut, dram_bw=128 * GB,
        noc_bw=32 * GB, d2d_bw=d2d, glb_bytes=1 * MB, macs_per_core=1024,
    )


class TestYield:
    def test_paper_reference_points(self):
        """Yield at the unit area equals Yield_unit exactly."""
        y = YieldModel()
        assert y.die_yield(40.0) == pytest.approx(0.9)
        assert y.die_yield(80.0) == pytest.approx(0.81)

    def test_large_die_yield_collapses(self):
        """Echo of the 800 mm^2 vs 200 mm^2 motivation [13]."""
        y = YieldModel(yield_unit=0.9, area_unit_mm2=40.0)
        assert y.die_yield(800.0) < 0.15
        assert y.die_yield(200.0) > 0.5

    def test_zero_area(self):
        assert YieldModel().die_yield(0.0) == 1.0

    @given(a=st.floats(1.0, 500.0), b=st.floats(1.0, 500.0))
    def test_monotone_decreasing(self, a, b):
        y = YieldModel()
        lo, hi = sorted((a, b))
        assert y.die_yield(lo) >= y.die_yield(hi)


class TestDramCost:
    def test_paper_constants(self):
        m = DramCostModel()
        assert m.cost(144 * GB) == pytest.approx(5 * 3.5)
        assert m.n_dies(32 * GB) == 1

    def test_ceil_behavior(self):
        m = DramCostModel()
        assert m.n_dies(33 * GB) == 2


class TestPackaging:
    def test_monolithic_uses_fanout_price(self):
        p = PackagingModel()
        assert p.unit_price(300.0, n_dies=1) == p.c_fanout

    def test_chiplet_tiers_increase(self):
        p = PackagingModel()
        assert p.unit_price(400.0, 4) < p.unit_price(1500.0, 4) \
            < p.unit_price(3000.0, 4)

    def test_yield_degrades_with_die_count(self):
        p = PackagingModel()
        assert p.package_yield(2) > p.package_yield(10)

    def test_cost_scales_with_area(self):
        p = PackagingModel()
        assert p.cost(200.0, 4) < p.cost(400.0, 4)


class TestMCEvaluator:
    def test_report_components_positive(self):
        r = DEFAULT_MC.evaluate(g_arch())
        assert r.silicon > 0 and r.dram > 0 and r.packaging > 0
        assert r.total == pytest.approx(r.silicon + r.dram + r.packaging)

    def test_paper_g_vs_s_delta(self):
        """Sec VI-B1: G-Arch costs ~14.3% more than S-Arch."""
        s = DEFAULT_MC.evaluate(s_arch()).total
        g = DEFAULT_MC.evaluate(g_arch()).total
        assert 1.08 < g / s < 1.22

    def test_paper_tarch_delta(self):
        """Sec VI-B2: the Gemini torus design reduces MC by ~40%."""
        t = DEFAULT_MC.evaluate(t_arch()).total
        g = DEFAULT_MC.evaluate(g_arch_120()).total
        assert 0.48 < g / t < 0.72

    def test_more_chiplets_cheaper_silicon_pricier_packaging(self):
        mono = DEFAULT_MC.evaluate(arch_with_cuts(1, 1))
        fine = DEFAULT_MC.evaluate(arch_with_cuts(4, 4))
        # Finer partition: better yield on compute silicon...
        per_mm2_mono = mono.silicon / mono.total_silicon_area_mm2
        per_mm2_fine = fine.silicon / fine.total_silicon_area_mm2
        assert per_mm2_fine < per_mm2_mono
        # ...but costlier substrate.
        assert fine.packaging > mono.packaging

    def test_excessive_partitioning_raises_total_mc(self):
        """Sec VII-A1: overly fine chiplet granularity hurts MC."""
        moderate = DEFAULT_MC.evaluate(arch_with_cuts(2, 1)).total
        excessive = DEFAULT_MC.evaluate(arch_with_cuts(8, 8)).total
        assert excessive > moderate

    def test_mc_independent_of_mapping_inputs(self):
        # Same arch evaluated twice gives identical results (pure).
        a = arch_with_cuts(2, 2)
        assert DEFAULT_MC.evaluate(a) == DEFAULT_MC.evaluate(a)

    def test_die_count(self):
        r = DEFAULT_MC.evaluate(arch_with_cuts(2, 2))
        assert len(r.die_areas_mm2) == 4 + 2


@settings(max_examples=20, deadline=None)
@given(glb_mb=st.integers(1, 8), macs=st.sampled_from([512, 1024, 2048]))
def test_mc_monotone_in_resources(glb_mb, macs):
    base = ArchConfig(
        cores_x=4, cores_y=4, xcut=2, ycut=1, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=glb_mb * MB,
        macs_per_core=macs,
    )
    richer = replace(base, glb_bytes=(glb_mb + 1) * MB)
    assert DEFAULT_MC.evaluate(richer).total > DEFAULT_MC.evaluate(base).total
