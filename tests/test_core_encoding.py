"""Unit tests for the LP SPM encoding (Sec IV-A)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.encoding import (
    IMPLICIT,
    FlowOfData,
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    Partition,
    fd_requirements,
    split_range,
    validate_lms,
)
from repro.errors import InvalidMappingError
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def two_conv_graph():
    """The paper's Fig 3 example: a two-Conv chain."""
    g = DNNGraph("fig3")
    g.add_layer(Layer("L1", LayerType.CONV, out_h=6, out_w=6, out_k=8, in_c=3,
                      kernel_r=3, kernel_s=3, pad_h=1, pad_w=1))
    g.add_layer(Layer("L2", LayerType.CONV, out_h=6, out_w=6, out_k=4, in_c=8,
                      kernel_r=3, kernel_s=3, pad_h=1, pad_w=1), inputs=["L1"])
    return g


def fig3_lms(g):
    """LMS mirroring Fig 3: Part1=(1,1,2,2) CG1=(2,1,5,4); Part2=(1,1,2,1)
    CG2=(3,6); FD1=(1,1,-1); FD2=(-1,2,2) — 0-based cores here."""
    group = LayerGroup(("L1", "L2"), batch_unit=2)
    ms1 = MappingScheme(
        Partition(1, 1, 2, 2), (1, 0, 4, 3), FlowOfData(1, 1, IMPLICIT)
    )
    ms2 = MappingScheme(
        Partition(1, 1, 2, 1), (2, 5), FlowOfData(IMPLICIT, 2, 2)
    )
    return LayerGroupMapping(group, {"L1": ms1, "L2": ms2})


class TestSplitRange:
    def test_even_split(self):
        assert split_range(8, 2, 0) == (0, 4)
        assert split_range(8, 2, 1) == (4, 8)

    def test_uneven_split_covers_total(self):
        pieces = [split_range(7, 3, i) for i in range(3)]
        assert pieces[0][0] == 0
        assert pieces[-1][1] == 7
        for (a, b), (c, d) in zip(pieces, pieces[1:]):
            assert b == c

    @given(total=st.integers(1, 1000), parts=st.integers(1, 50))
    def test_split_partition_property(self, total, parts):
        parts = min(parts, total)
        sizes = [split_range(total, parts, i) for i in range(parts)]
        assert sum(b - a for a, b in sizes) == total
        assert all(b > a for a, b in sizes)
        # Near-equal: sizes differ by at most 1.
        widths = [b - a for a, b in sizes]
        assert max(widths) - min(widths) <= 1


class TestPartition:
    def test_numerical_id_order(self):
        p = Partition(1, 1, 2, 2)
        ids = list(p.ids())
        assert ids == [(0, 0, 0, 0), (0, 0, 0, 1), (0, 0, 1, 0), (0, 0, 1, 1)]
        assert [p.numerical_id(*i) for i in ids] == [0, 1, 2, 3]

    def test_fig3_correspondence(self):
        g = two_conv_graph()
        lms = fig3_lms(g)
        ms1 = lms.scheme("L1")
        # NID 0 -> first core of CG1 (paper maps workload 1-0 to core C2,
        # 0-based index 1).
        assert ms1.core_of(0, 0, 0, 0) == 1
        assert ms1.core_of(0, 0, 1, 1) == 3

    def test_feasibility(self):
        g = two_conv_graph()
        layer = g.layer("L1")
        assert Partition(1, 1, 2, 2).feasible_for(layer, batch_unit=2)
        assert not Partition(1, 1, 4, 1).feasible_for(layer, batch_unit=2)
        assert not Partition(7, 1, 1, 1).feasible_for(layer, batch_unit=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidMappingError):
            Partition(0, 1, 1, 1)


class TestMappingScheme:
    def test_core_count_must_match_parts(self):
        with pytest.raises(InvalidMappingError):
            MappingScheme(Partition(1, 1, 2, 2), (0, 1, 2),
                          FlowOfData(0, 0, 0))

    def test_duplicate_cores_rejected(self):
        with pytest.raises(InvalidMappingError):
            MappingScheme(Partition(1, 1, 1, 2), (3, 3),
                          FlowOfData(0, 0, 0))

    def test_core_groups_are_ordered(self):
        a = MappingScheme(Partition(1, 1, 1, 2), (0, 1), FlowOfData(0, 0, 0))
        b = MappingScheme(Partition(1, 1, 1, 2), (1, 0), FlowOfData(0, 0, 0))
        assert a.core_group != b.core_group
        assert a.core_of(0, 0, 0, 0) != b.core_of(0, 0, 0, 0)


class TestFdRules:
    def test_fig3_requirements(self):
        g = two_conv_graph()
        group = LayerGroup(("L1", "L2"), batch_unit=2)
        r1 = fd_requirements(g, group, "L1")
        # L1 reads the DNN input and has weights; its consumer is in
        # the group, so OF is implicit.
        assert (r1.ifmap, r1.weight, r1.ofmap) == (True, True, False)
        r2 = fd_requirements(g, group, "L2")
        # L2's ifmap comes from L1 (in group); it is the DNN output.
        assert (r2.ifmap, r2.weight, r2.ofmap) == (False, True, True)

    def test_cross_group_producer_is_implicit_ifmap(self):
        g = two_conv_graph()
        group = LayerGroup(("L2",), batch_unit=2)
        r2 = fd_requirements(g, group, "L2")
        assert not r2.ifmap  # fetched from wherever L1 stored its ofmaps

    def test_pool_has_no_weight_flow(self):
        g = DNNGraph("p")
        g.add_layer(Layer("p1", LayerType.POOL, out_h=2, out_w=2, out_k=4,
                          in_c=4, kernel_r=2, kernel_s=2, stride=2))
        group = LayerGroup(("p1",), batch_unit=1)
        assert not fd_requirements(g, group, "p1").weight


class TestValidateLms:
    def test_fig3_scheme_is_valid(self):
        g = two_conv_graph()
        validate_lms(g, fig3_lms(g), n_cores=6, n_dram=2)

    def test_core_out_of_range(self):
        g = two_conv_graph()
        lms = fig3_lms(g)
        with pytest.raises(InvalidMappingError):
            validate_lms(g, lms, n_cores=4, n_dram=2)

    def test_core_reuse_across_layers_rejected(self):
        g = two_conv_graph()
        group = LayerGroup(("L1", "L2"), batch_unit=2)
        ms1 = MappingScheme(Partition(1, 1, 2, 2), (0, 1, 2, 3),
                            FlowOfData(0, 0, IMPLICIT))
        ms2 = MappingScheme(Partition(1, 1, 2, 1), (3, 4),
                            FlowOfData(IMPLICIT, 0, 0))
        lms = LayerGroupMapping(group, {"L1": ms1, "L2": ms2})
        with pytest.raises(InvalidMappingError):
            validate_lms(g, lms, n_cores=6, n_dram=2)

    def test_explicit_fd_where_implicit_required(self):
        g = two_conv_graph()
        group = LayerGroup(("L1", "L2"), batch_unit=2)
        ms1 = MappingScheme(Partition(1, 1, 2, 2), (0, 1, 2, 3),
                            FlowOfData(0, 0, 1))  # OF must be implicit
        ms2 = MappingScheme(Partition(1, 1, 2, 1), (4, 5),
                            FlowOfData(IMPLICIT, 0, 0))
        lms = LayerGroupMapping(group, {"L1": ms1, "L2": ms2})
        with pytest.raises(InvalidMappingError):
            validate_lms(g, lms, n_cores=6, n_dram=2)

    def test_fd_value_above_dram_count(self):
        g = two_conv_graph()
        lms = fig3_lms(g)
        with pytest.raises(InvalidMappingError):
            validate_lms(g, lms, n_cores=6, n_dram=1)

    def test_oversized_partition_rejected(self):
        g = two_conv_graph()
        group = LayerGroup(("L1", "L2"), batch_unit=1)  # B part 2 > unit 1
        ms1 = MappingScheme(Partition(1, 1, 2, 2), (0, 1, 2, 3),
                            FlowOfData(0, 0, IMPLICIT))
        ms2 = MappingScheme(Partition(1, 1, 1, 1), (4,),
                            FlowOfData(IMPLICIT, 0, 0))
        lms = LayerGroupMapping(group, {"L1": ms1, "L2": ms2})
        with pytest.raises(InvalidMappingError):
            validate_lms(g, lms, n_cores=6, n_dram=2)

    def test_lms_must_cover_group(self):
        g = two_conv_graph()
        group = LayerGroup(("L1", "L2"), batch_unit=2)
        ms1 = MappingScheme(Partition(1, 1, 2, 2), (0, 1, 2, 3),
                            FlowOfData(0, 0, IMPLICIT))
        with pytest.raises(InvalidMappingError):
            LayerGroupMapping(group, {"L1": ms1})
