"""Unit tests for optimization-space size calculations (Sec IV-B)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.space import (
    compositions,
    gemini_space_size,
    log10_size,
    partition_count,
    space_table,
    tangram_space_size,
)


class TestPartitionCount:
    def test_known_values(self):
        # OEIS A000041.
        known = [1, 1, 2, 3, 5, 7, 11, 15, 22, 30, 42]
        for m, p in enumerate(known):
            assert partition_count(m) == p

    def test_larger_value(self):
        assert partition_count(36) == 17977
        assert partition_count(100) == 190569292

    def test_brute_force_agreement(self):
        def brute(m, largest=None):
            if m == 0:
                return 1
            largest = largest or m
            return sum(
                brute(m - k, min(k, m - k)) for k in range(min(largest, m), 0, -1)
            )
        for m in range(1, 12):
            assert partition_count(m) == brute(m)


class TestGeminiSpace:
    def test_formula_terms(self):
        # M=6, N=2: M! * [C(2,0)C(3,1)4^2 + C(2,1)C(3,0)4^1].
        expected = math.factorial(6) * (1 * 3 * 16 + 2 * 1 * 4)
        assert gemini_space_size(6, 2) == expected

    def test_single_layer(self):
        # N=1: M! * C(1,0)*C(M-2,0)*4.
        assert gemini_space_size(6, 1) == math.factorial(6) * 4

    def test_zero_when_more_layers_than_cores(self):
        assert gemini_space_size(3, 5) == 0

    def test_monotone_in_cores(self):
        sizes = [gemini_space_size(m, 4) for m in range(8, 40, 4)]
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_gemini_dwarfs_tangram(self):
        """The paper's central claim about the space (Sec IV-B)."""
        for m, n in [(16, 4), (36, 8), (64, 10), (144, 12)]:
            assert gemini_space_size(m, n) > 1000 * tangram_space_size(m, n)

    def test_paper_scale_is_astronomical(self):
        # 36 cores, 8 layers: far beyond exhaustive enumeration.
        assert log10_size(gemini_space_size(36, 8)) > 40


class TestTangramSpace:
    def test_formula(self):
        assert tangram_space_size(36, 5) == 5 * partition_count(36)

    def test_zero_cases(self):
        assert tangram_space_size(0, 3) == 0
        assert tangram_space_size(5, 0) == 0


class TestHelpers:
    def test_compositions(self):
        assert compositions(5, 2) == 4
        assert compositions(3, 3) == 1
        assert compositions(2, 3) == 0

    def test_log10_of_huge_int(self):
        v = 10 ** 500
        assert log10_size(v) == pytest.approx(500.0, abs=1e-6)

    def test_log10_matches_math_for_small(self):
        assert log10_size(12345) == pytest.approx(math.log10(12345))

    def test_space_table_shape(self):
        table = space_table([8, 16], [2, 4])
        assert set(table) == {(8, 2), (8, 4), (16, 2), (16, 4)}
        g, t = table[(16, 4)]
        assert g > t


@settings(max_examples=30)
@given(m=st.integers(2, 60), n=st.integers(1, 10))
def test_space_positive_and_ordered(m, n):
    if n > m:
        assert gemini_space_size(m, n) == 0
        return
    g = gemini_space_size(m, n)
    t = tangram_space_size(m, n)
    assert g > 0
    assert t > 0
    if n >= 2 and m >= 2 * n:
        assert g > t
