"""Population-batched evaluation core: bit-identity and SA semantics.

The batched core (``repro.compiled.batch``) stacks N candidate
mappings into (N, ...) arrays and evaluates them with shared scatter
kernels and one fold — but the contract is *float-exact bit-identity*
with the per-mapping compiled path: at N=1 outright, and element-wise
at any N.  These tests pin that contract over the whole model
registry, through annealed states, and under slot permutation; plus
the population/tempering SA semantics built on top and the int64
guards in the table builders.
"""

import numpy as np
import pytest

from repro.arch import g_arch, s_arch
from repro.compiled.batch import PopulationGroupState, evaluate_population
from repro.compiled.graph import (
    MAX_STACKED_LANES,
    as_index_table,
    stacked_offsets,
)
from repro.core import SAController, SASettings
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.evalmodel import Evaluator
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType
from repro.workloads.models import MODEL_REGISTRY, build

from test_compiled_identity import assert_group_evals_equal, small_arch


def _setup(name, arch, batch):
    graph = build(name)
    groups = partition_graph(graph, arch, batch=batch)
    lmss = [initial_lms(graph, g, arch) for g in groups]
    ev = Evaluator(arch, cache=True)
    return graph, lmss, ev, ev.compiled_for(graph)


def _stored_for(lms, stored):
    for lname in lms.group.layers:
        of = lms.scheme(lname).fd.ofmap
        if of >= 0:
            stored[lname] = of
    return stored


def _anneal_population(name, arch, batch, population, iterations=40,
                       tempering=1, seed=3):
    graph = build(name)
    groups = partition_graph(graph, arch, batch=batch)
    lmss = [initial_lms(graph, g, arch) for g in groups]
    ev = Evaluator(arch, cache=True)
    ctrl = SAController(
        graph, ev, lmss, batch,
        SASettings(iterations=iterations, seed=seed,
                   population=population, tempering=tempering),
    )
    ctrl.run()
    return ctrl, ev.compiled_for(graph)


class TestBatchIdentity:
    """Batched vs per-mapping compiled path, float-exact."""

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_batch1_bit_identical_full_registry(self, name):
        graph, lmss, ev, ceval = _setup(name, s_arch(), 4)
        stored = {}
        for lms in lmss:
            batched = evaluate_population(ceval, [lms], 4, [stored])
            serial = ceval.evaluate_group(lms, 4, stored)
            assert_group_evals_equal(batched[0], serial, name)
            _stored_for(lms, stored)

    def test_annealed_population_elementwise_identical(self):
        """Every walker of an annealed population evaluates to exactly
        what the per-mapping path computes from its state."""
        ctrl, ceval = _anneal_population("GN", g_arch(), 8, population=8)
        walk = ctrl._population_walk
        for gi in range(len(ctrl.best)):
            states = [walk.lms[w][gi] for w in range(walk.n)]
            batched = evaluate_population(ceval, states, 8, walk.stored)
            for w, lms in enumerate(states):
                serial = ceval.evaluate_group(lms, 8, walk.stored[w])
                assert_group_evals_equal(batched[w], serial, f"g{gi} w{w}")

    def test_slot_permutation_invariance(self):
        """A walker's result does not depend on its batch slot."""
        ctrl, ceval = _anneal_population("GN", small_arch(), 4,
                                         population=6)
        walk = ctrl._population_walk
        states = [walk.lms[w][0] for w in range(walk.n)]
        base = evaluate_population(ceval, states, 4, walk.stored)
        perm = [3, 0, 5, 1, 4, 2]
        shuffled = evaluate_population(
            ceval,
            [states[p] for p in perm],
            4,
            [walk.stored[p] for p in perm],
        )
        for j, p in enumerate(perm):
            assert_group_evals_equal(shuffled[j], base[p], f"slot {j}")



class TestPopulationSA:
    def test_population_deterministic_for_fixed_seed(self):
        a, _ = _anneal_population("GN", small_arch(), 4, population=8,
                                  tempering=4)
        b, _ = _anneal_population("GN", small_arch(), 4, population=8,
                                  tempering=4)
        assert a.best_costs == b.best_costs
        assert a.stats.proposed == b.stats.proposed
        assert a.stats.accepted == b.stats.accepted

    def test_object_and_compiled_populations_agree(self):
        """The population walk is evaluator-agnostic: the object path
        anneals to bit-identical best costs."""
        graph = build("GN")
        arch = small_arch()
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        settings = SASettings(iterations=30, seed=7, population=6)
        runs = []
        for ev in (Evaluator(arch, cache=True),
                   Evaluator(arch, cache=False)):
            ctrl = SAController(graph, ev, list(lmss), 4, settings)
            ctrl.run()
            runs.append(ctrl)
        a, b = runs
        assert list(a.best_costs) == list(b.best_costs)
        # Not just the winners: every walker's tracked per-group costs
        # — the product of every propose/accept/resolve round — match
        # bit for bit between the batched and the object evaluation.
        wa, wb = a._population_walk, b._population_walk
        assert wa.costs == wb.costs
        assert wa.totals == wb.totals

    def test_tempering_attempts_swaps_deterministically(self):
        from repro.core.population import SWAP_PERIOD

        iters = 4 * SWAP_PERIOD
        a, _ = _anneal_population("GN", small_arch(), 4, population=8,
                                  tempering=4, iterations=iters)
        b, _ = _anneal_population("GN", small_arch(), 4, population=8,
                                  tempering=4, iterations=iters)
        wa, wb = a._population_walk, b._population_walk
        assert wa.swaps_attempted > 0
        assert (wa.swaps_attempted, wa.swaps_accepted) == \
            (wb.swaps_attempted, wb.swaps_accepted)
        assert sorted(wa.rung_of) == sorted(wb.rung_of)

    def test_population_one_uses_serial_walk(self):
        ctrl, _ = _anneal_population("GN", small_arch(), 4, population=1,
                                     iterations=10)
        assert ctrl._population_walk is None


class TestDiagProposalTotals:
    """Satellite: per-operator diag tables count *all* scored
    proposals, so effectiveness stays comparable across batch sizes."""

    def _run(self, **sa_kwargs):
        graph = build("GN")
        arch = small_arch()
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        ctrl = SAController(
            graph, Evaluator(arch, cache=True), lmss, 4,
            SASettings(iterations=40, seed=5, diag=True, **sa_kwargs),
        )
        ctrl.run()
        return ctrl.stats

    @pytest.mark.parametrize("sa_kwargs", [
        {},
        {"proposal_batch": 3},
        {"population": 6},
        {"population": 6, "tempering": 3},
    ])
    def test_diag_proposed_matches_stats(self, sa_kwargs):
        stats = self._run(**sa_kwargs)
        ops = stats.diag["operators"]
        assert sum(rec["proposed"] for rec in ops.values()) == \
            stats.proposed
        assert sum(rec["accepted"] for rec in ops.values()) == \
            stats.accepted


class TestGraphGuards:
    """Satellite: int64 promotion + overflow guards in the builders."""

    def test_stacked_offsets_are_int64(self):
        offs = stacked_offsets(7, 33)
        assert offs.dtype == np.int64
        assert offs[-1] == 6 * 33

    def test_stacked_offsets_reject_oversized_lane_space(self):
        with pytest.raises(ValueError, match="lanes"):
            stacked_offsets(1 << 21, MAX_STACKED_LANES)

    def test_as_index_table_promotes_narrow_dtypes(self):
        narrow = np.arange(5, dtype=np.int32)
        wide = as_index_table(narrow)
        assert wide.dtype == np.int64
        again = as_index_table(wide)
        assert again is wide

    def test_offset_product_exceeds_int32(self):
        # 2**20 slots x 2**12 links would wrap int32; the guard path
        # computes in python ints and emits int64.
        offs = stacked_offsets(1 << 20, 1 << 12)
        assert int(offs[-1]) == ((1 << 20) - 1) * (1 << 12)

    def test_oversized_synthetic_layer_rejected(self):
        g = DNNGraph("huge")
        g.add_layer(Layer(
            "big", LayerType.CONV, out_h=1 << 14, out_w=1 << 14,
            out_k=1 << 14, in_c=1 << 14, kernel_r=1, kernel_s=1,
        ))
        from repro.compiled.graph import CompiledGraph

        with pytest.raises(ValueError, match="dimension product"):
            CompiledGraph(g)
