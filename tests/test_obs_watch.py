"""Store-only campaign watch + the ledger a real campaign run writes."""

import os

import pytest

from repro.campaign import CampaignInterrupted, CampaignRunner, CampaignSpec
from repro.cli.main import main
from repro.core.engine import MappingEngine, MappingEngineSettings
from repro.core.sa import SASettings
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    Workload,
    enumerate_candidates,
)
from repro.io.serialization import (
    candidate_result_from_dict,
    candidate_result_to_dict,
)
from repro.obs.ledger import read_ledger
from repro.obs.watch import (
    EVENT_EVALUATED,
    EVENT_FINISHED,
    EVENT_INTERRUPTED,
    EVENT_PERF,
    EVENT_RUN_RESUMED,
    EVENT_RUN_STARTED,
    ledger_path,
    render_watch,
    watch_snapshot,
)
from repro.perf import PERF
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def tiny_graph(n=3):
    g = DNNGraph("tiny")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


def small_candidates():
    grid = DseGrid(
        tops=8, cuts=(1, 2), dram_bw_per_tops=(1.0,), noc_bw_gbps=(32,),
        d2d_ratio=(0.5,), glb_kb=(512, 1024), macs_per_core=(1024,),
    )
    return enumerate_candidates(grid)


N_CANDIDATES = len(small_candidates())


def make_spec(name="camp", iterations=6):
    return CampaignSpec(
        name=name,
        candidates=small_candidates(),
        workloads=[Workload(tiny_graph(), batch=2)],
        sa=SASettings(iterations=iterations, seed=11),
        warm_start=True,
    )


@pytest.fixture
def interrupted_campaign(tmp_path):
    """A campaign killed after 3 of 4 candidates (the acceptance
    scenario: watch must work store-only on an interrupted run)."""
    home = tmp_path / "campaigns"
    PERF.reset()  # the run's final perf event must count this run only
    with pytest.raises(CampaignInterrupted):
        with CampaignRunner(make_spec(), home) as runner:
            runner.run(workers=1, fail_after=3)
    return home


class TestLedgerEvents:
    def test_interrupted_run_writes_a_coherent_ledger(
        self, interrupted_campaign
    ):
        events, skipped = read_ledger(
            ledger_path(interrupted_campaign, "camp")
        )
        assert skipped == 0
        names = [e["event"] for e in events]
        assert names[0] == EVENT_RUN_STARTED
        assert names.count(EVENT_EVALUATED) == 3
        assert EVENT_INTERRUPTED in names
        assert names[-1] == EVENT_PERF

        start = events[0]
        assert start["name"] == "camp"
        assert start["total"] == N_CANDIDATES
        assert start["pending"] == N_CANDIDATES

        for ev in events:
            if ev["event"] != EVENT_EVALUATED:
                continue
            assert ev["key"] and ev["duration_s"] > 0
            assert ev["score"] > 0
            assert ev["shard"] == os.getpid()
            # One engine restart by default: mean > 0, variance 0.
            assert ev["restarts"] == 1
            assert ev["restart_mean_s"] > 0
            assert ev["restart_var_s"] == 0.0

        perf = events[-1]
        assert perf["counters"]["dse.candidates"] == 3
        assert perf["counters"]["sa.iterations"] > 0
        assert "spans" not in perf
        assert perf["timers"]

    def test_resume_appends_resumed_and_finished(self, interrupted_campaign):
        with CampaignRunner(make_spec(), interrupted_campaign) as runner:
            runner.run(workers=1)
        events, _ = read_ledger(ledger_path(interrupted_campaign, "camp"))
        names = [e["event"] for e in events]
        assert EVENT_RUN_RESUMED in names
        assert EVENT_FINISHED in names
        finished = next(e for e in events if e["event"] == EVENT_FINISHED)
        assert finished["evaluated"] == N_CANDIDATES - 3
        assert finished["store_hits"] == 3


class TestWatchSnapshot:
    def test_interrupted_campaign_store_only_view(self, interrupted_campaign):
        snap = watch_snapshot(interrupted_campaign, "camp")
        assert snap["status"]["done"] == 3
        assert snap["status"]["pending"] == N_CANDIDATES - 3
        assert snap["runs"] == 1
        assert not snap["resumed"]
        assert not snap["run_active"]

        # Per-shard health: one serial shard, this pid.
        assert list(snap["shards"]) == [os.getpid()]
        shard = snap["shards"][os.getpid()]
        assert shard["evaluated"] == 3
        assert shard["failed"] == 0
        assert shard["busy_s"] > 0 and shard["rate"] > 0
        assert snap["cands_per_sec"] == pytest.approx(shard["rate"])
        assert snap["sa_iters_per_sec"] > 0
        assert snap["eta_s"] is not None and snap["eta_s"] > 0
        assert snap["ledger_skipped"] == 0

    def test_throughput_counts_only_the_latest_run(
        self, interrupted_campaign
    ):
        with CampaignRunner(make_spec(), interrupted_campaign) as runner:
            runner.run(workers=1)
        snap = watch_snapshot(interrupted_campaign, "camp")
        assert snap["runs"] == 2
        assert snap["resumed"]
        assert not snap["run_active"]
        # The resumed segment evaluated exactly the pending candidates.
        assert sum(s["evaluated"] for s in snap["shards"].values()) == \
            N_CANDIDATES - 3
        assert snap["status"]["pending"] == 0
        assert snap["eta_s"] is None
        # Cache table comes from the run's perf event, and the resumed
        # run warm-starts from stored neighbours.
        assert snap["caches"]

    def test_torn_ledger_tail_is_tolerated(self, interrupted_campaign):
        path = ledger_path(interrupted_campaign, "camp")
        with open(path, "a") as fh:
            fh.write('{"event": "candidate_eva')
        snap = watch_snapshot(interrupted_campaign, "camp")
        assert snap["ledger_skipped"] == 1
        assert snap["status"]["done"] == 3


class TestRender:
    def test_frame_contains_progress_shards_and_throughput(
        self, interrupted_campaign
    ):
        frame = render_watch(watch_snapshot(interrupted_campaign, "camp"))
        assert "campaign 'camp'" in frame
        assert f"3/{N_CANDIDATES} done, {N_CANDIDATES - 3} pending" in frame
        assert "cand/s" in frame and "SA it/s" in frame
        assert "ETA" in frame
        assert "shard" in frame and str(os.getpid()) in frame
        assert "ledger:" in frame

    def test_cli_watch_once(self, interrupted_campaign, capsys):
        rc = main([
            "campaign", "watch", "--name", "camp",
            "--out", str(interrupted_campaign), "--once",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign 'camp'" in out
        assert f"3/{N_CANDIDATES} done" in out

    def test_cli_watch_once_json(self, interrupted_campaign, capsys):
        import json

        rc = main([
            "campaign", "watch", "--name", "camp",
            "--out", str(interrupted_campaign), "--once", "--json",
        ])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["status"]["done"] == 3
        assert str(os.getpid()) in snap["shards"]
        assert not snap["run_active"]

    def test_cli_watch_unknown_campaign_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "campaign", "watch", "--name", "nope",
                "--out", str(tmp_path), "--once",
            ])


class TestRestartVariance:
    def test_engine_records_one_wall_time_per_restart(self):
        arch = small_candidates()[0]
        engine = MappingEngine(arch, settings=MappingEngineSettings(
            sa=SASettings(iterations=5, seed=1), restarts=3,
        ))
        result = engine.map(tiny_graph(), batch=2)
        assert len(result.restart_wall_times) == 3
        assert all(t > 0 for t in result.restart_wall_times)

    def test_no_sa_means_no_restart_times(self):
        arch = small_candidates()[0]
        engine = MappingEngine(arch, settings=MappingEngineSettings(
            sa=SASettings(iterations=0), restarts=3,
        ))
        result = engine.map(tiny_graph(), batch=2)
        assert result.restart_wall_times == []

    def test_candidate_restart_times_roundtrip(self):
        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=4, seed=1),
        )
        result = explorer.evaluate_candidate(small_candidates()[0])
        (wl_name,) = result.restart_times
        assert len(result.restart_times[wl_name]) == 1

        rt = candidate_result_from_dict(candidate_result_to_dict(result))
        assert rt.restart_times == result.restart_times

        # Pre-observability records (no restart_times field) still load.
        legacy = candidate_result_to_dict(result)
        legacy.pop("restart_times")
        assert candidate_result_from_dict(legacy).restart_times == {}
