"""Tests for units, errors, graph-partition internals and presets."""


import pytest

from repro import units
from repro.arch import ArchConfig, g_arch, g_arch_120, s_arch, t_arch
from repro.core.graphpart import (
    GroupEstimate,
    _candidate_units,
    estimate_group_cost,
    partition_graph,
)
from repro.errors import (
    CapacityError,
    InvalidArchitectureError,
    InvalidMappingError,
    InvalidWorkloadError,
    ReproError,
    SearchError,
)
from repro.units import GB, KB, MB, gbps, pj_per_bit
from repro.workloads.models import build


class TestUnits:
    def test_byte_prefixes(self):
        assert KB == 1024
        assert MB == 1024 ** 2
        assert GB == 1024 ** 3

    def test_pj_per_bit(self):
        # 1 pJ/bit == 8 pJ/byte.
        assert pj_per_bit(1.0) == pytest.approx(8e-12)

    def test_gbps(self):
        assert gbps(32) == 32 * GB

    def test_tops_accounting_constant(self):
        # "1 TOPS" == 1024 G-ops at 1 GHz in the paper's accounting.
        assert units.TOPS == 1024 * 1e9


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        InvalidArchitectureError, InvalidMappingError,
        InvalidWorkloadError, CapacityError, SearchError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestPresets:
    def test_s_arch_is_simba_shaped(self):
        s = s_arch()
        assert s.n_chiplets == 36
        assert s.cores_per_chiplet == 1
        assert round(s.tops) == 72

    def test_g_arch_matches_paper_tuple(self):
        assert g_arch().paper_tuple() == \
            "(2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024)"

    def test_g_arch_120_matches_paper_tuple(self):
        assert g_arch_120().paper_tuple() == \
            "(6, 60, 480GB/s, 64GB/s, 32GB/s, 2MB, 2048)"

    def test_t_arch_is_monolithic_240tops(self):
        t = t_arch()
        assert t.is_monolithic
        assert round(t.tops) == 240
        assert t.n_cores == 120


class TestGraphPartitionInternals:
    def test_candidate_units_bounded_by_batch(self):
        assert _candidate_units(1) == [1]
        assert _candidate_units(8) == [1, 2, 4, 8]
        assert max(_candidate_units(64)) == 64

    def test_estimate_has_positive_fields(self):
        g = build("TF")
        est = estimate_group_cost(g, g.topological_order()[:4], g_arch(), 8)
        assert est.delay > 0
        assert est.energy > 0
        assert est.batch_unit >= 1

    def test_cost_linearization(self):
        est = GroupEstimate(delay=2.0, energy=3.0, batch_unit=1,
                            ref_power=5.0)
        assert est.cost == pytest.approx(3.0 + 5.0 * 2.0)

    def test_partition_respects_core_limit(self):
        g = build("TF")
        tiny = ArchConfig(
            cores_x=2, cores_y=2, xcut=1, ycut=1, dram_bw=32 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=1 * MB,
            macs_per_core=1024,
        )
        groups = partition_graph(g, tiny, batch=4, max_group_layers=16)
        # A group can never hold more layers than cores.
        assert max(len(grp) for grp in groups) <= 4

    def test_larger_batch_does_not_break_units(self):
        g = build("TF")
        for batch in (1, 2, 64):
            for grp in partition_graph(g, g_arch(), batch=batch):
                assert grp.batch_unit <= max(batch, 1)


class TestArchConfigEdgeCases:
    def test_single_core(self):
        a = ArchConfig(
            cores_x=1, cores_y=1, xcut=1, ycut=1, dram_bw=32 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=1 * MB,
            macs_per_core=1024,
        )
        assert a.n_cores == 1
        assert a.cores_per_chiplet == 1

    def test_monolithic_with_zero_d2d_rejected_when_cut(self):
        with pytest.raises(InvalidArchitectureError):
            ArchConfig(
                cores_x=4, cores_y=4, xcut=2, ycut=1, dram_bw=32 * GB,
                noc_bw=32 * GB, d2d_bw=0, glb_bytes=1 * MB,
                macs_per_core=1024,
            )

    def test_with_name(self):
        assert g_arch().with_name("X").name == "X"

    def test_frequency_scales_tops(self):
        a = ArchConfig(
            cores_x=6, cores_y=6, xcut=1, ycut=1, dram_bw=32 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=1 * MB,
            macs_per_core=1024, frequency=2e9,
        )
        assert a.tops == pytest.approx(144.0)
