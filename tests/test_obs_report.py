"""Trace validation, self-time aggregation, and ``repro profile-report``."""

import json

import pytest

from repro.cli.main import main
from repro.obs.report import (
    PROFILE_HEADERS,
    TraceFormatError,
    aggregate_trace,
    load_chrome_trace,
    profile_rows,
    validate_chrome_trace,
)


def _event(name, pid, sid, parent, dur_us, cpu_ms=0.0, ts=0.0):
    return {
        "name": name, "ph": "X", "ts": ts, "dur": dur_us, "pid": pid,
        "tid": 1, "args": {"sid": sid, "parent": parent, "cpu_ms": cpu_ms},
    }


# Two processes, same sid numbering (links are scoped per pid): in each,
# a parent span encloses one child.
EVENTS = [
    _event("candidate", pid=1, sid=1, parent=-1, dur_us=10_000, cpu_ms=9.0),
    _event("map", pid=1, sid=2, parent=1, dur_us=4_000, cpu_ms=3.5),
    _event("candidate", pid=2, sid=1, parent=-1, dur_us=7_000),
    _event("map", pid=2, sid=2, parent=1, dur_us=2_000),
]


class TestValidate:
    def test_accepts_object_and_bare_array_forms(self):
        assert validate_chrome_trace({"traceEvents": EVENTS}) == EVENTS
        assert validate_chrome_trace(list(EVENTS)) == EVENTS

    @pytest.mark.parametrize("bad", [
        "a string",
        {"traceEvents": "nope"},
        [{"name": "x"}],                                      # no ph
        [{"ph": "X", "name": "x", "ts": 0, "dur": 1}],        # no pid
        [{"ph": "X", "name": "x", "ts": "0", "dur": 1, "pid": 1}],
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(TraceFormatError):
            validate_chrome_trace(bad)

    def test_load_rejects_non_json_and_missing_files(self, tmp_path):
        bad = tmp_path / "trace.json"
        bad.write_text("{not json")
        with pytest.raises(TraceFormatError):
            load_chrome_trace(bad)
        with pytest.raises(TraceFormatError):
            load_chrome_trace(tmp_path / "absent.json")


class TestAggregate:
    def test_self_time_excludes_children_scoped_per_pid(self):
        agg = aggregate_trace(EVENTS)
        cand, mp = agg["candidate"], agg["map"]
        assert cand["calls"] == 2
        assert cand["total_ms"] == pytest.approx(17.0)
        # 10ms - 4ms child in pid 1, 7ms - 2ms child in pid 2.
        assert cand["self_ms"] == pytest.approx(11.0)
        assert cand["cpu_ms"] == pytest.approx(9.0)
        assert cand["pids"] == {1, 2}
        # Leaves: self == total.
        assert mp["total_ms"] == pytest.approx(6.0)
        assert mp["self_ms"] == pytest.approx(6.0)

    def test_events_without_links_still_aggregate(self):
        plain = [{"name": "foreign", "ph": "X", "ts": 0, "dur": 5_000,
                  "pid": 7}]
        agg = aggregate_trace(plain)
        assert agg["foreign"]["self_ms"] == pytest.approx(5.0)

    def test_metadata_events_are_ignored(self):
        events = EVENTS + [{"name": "process_name", "ph": "M", "pid": 1,
                            "args": {"name": "repro main"}}]
        assert set(aggregate_trace(events)) == {"candidate", "map"}


class TestRows:
    def test_rows_sort_heaviest_self_first(self):
        rows = profile_rows(aggregate_trace(EVENTS))
        assert [r[0] for r in rows] == ["candidate", "map"]
        assert len(rows[0]) == len(PROFILE_HEADERS)
        # self% column sums to ~100%
        assert rows[0][4] == "64.7%"

    def test_sort_key_selection(self):
        agg = aggregate_trace(EVENTS)
        by_total = profile_rows(agg, sort="total")
        assert [r[0] for r in by_total] == ["candidate", "map"]
        agg["map"]["calls"] = 99
        by_calls = profile_rows(agg, sort="calls")
        assert by_calls[0][0] == "map"


class TestCli:
    def test_profile_report_prints_table(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": EVENTS}))
        assert main(["profile-report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "self ms" in out
        assert "candidate" in out and "map" in out

    def test_profile_report_sort_flag(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(EVENTS))
        assert main(["profile-report", str(path), "--sort", "total"]) == 0
        assert "candidate" in capsys.readouterr().out

    def test_profile_report_rejects_bad_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text("not json")
        with pytest.raises(SystemExit):
            main(["profile-report", str(path)])

    def test_profile_report_empty_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["profile-report", str(path)]) == 0
        assert "no complete spans" in capsys.readouterr().out
