"""Tests for the SA controller, graph partitioning and mapping engine."""

import pytest

from repro.arch import ArchConfig, g_arch
from repro.core import (
    MappingEngine,
    MappingEngineSettings,
    SAController,
    SASettings,
    initial_lms,
    partition_graph,
    validate_lms,
)
from repro.core.graphpart import estimate_group_cost
from repro.evalmodel import Evaluator
from repro.units import GB, MB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType
from repro.workloads.models import build


def chain_graph(n=5):
    g = DNNGraph("chain")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=16, out_w=16, out_k=64,
                  in_c=3 if prev is None else 64, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


def small_arch():
    return ArchConfig(
        cores_x=4, cores_y=4, xcut=2, ycut=1, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB,
        macs_per_core=1024,
    )


class TestGraphPartition:
    def test_groups_cover_graph_in_topo_order(self):
        g = build("RN-50")
        arch = g_arch()
        groups = partition_graph(g, arch, batch=8)
        flattened = [n for grp in groups for n in grp.layers]
        assert flattened == g.topological_order()

    def test_group_size_bounded(self):
        g = build("RN-50")
        arch = g_arch()
        groups = partition_graph(g, arch, batch=8, max_group_layers=6)
        assert max(len(grp) for grp in groups) <= 6

    def test_fusion_happens(self):
        """The DP must actually fuse layers (LP mapping's raison d'etre)."""
        g = build("TF")
        groups = partition_graph(g, g_arch(), batch=64)
        assert max(len(grp) for grp in groups) >= 3
        assert len(groups) < len(g)

    def test_batch_unit_divides_reasonably(self):
        g = chain_graph()
        groups = partition_graph(g, small_arch(), batch=16)
        for grp in groups:
            assert 1 <= grp.batch_unit <= 16

    def test_estimator_rewards_fusion_energy(self):
        g = chain_graph(4)
        arch = small_arch()
        names = g.topological_order()
        fused = estimate_group_cost(g, names, arch, batch=16)
        singles = sum(
            estimate_group_cost(g, [n], arch, batch=16).energy for n in names
        )
        assert fused.energy < singles


class TestSAController:
    def make(self, iterations=60, seed=0):
        g = chain_graph(4)
        arch = small_arch()
        evaluator = Evaluator(arch)
        groups = partition_graph(g, arch, batch=8)
        lmss = [initial_lms(g, grp, arch) for grp in groups]
        settings = SASettings(iterations=iterations, seed=seed)
        return g, arch, SAController(g, evaluator, lmss, 8, settings)

    def test_never_worse_than_initial(self):
        g, arch, sa = self.make()
        initial = sum(sa.best_costs)
        sa.run()
        assert sum(sa.best_costs) <= initial + 1e-12

    def test_results_remain_valid(self):
        g, arch, sa = self.make(iterations=120)
        best = sa.run()
        for lms in best:
            validate_lms(g, lms, arch.n_cores, arch.n_dram)

    def test_stats_populated(self):
        _, _, sa = self.make(iterations=80)
        sa.run()
        assert sa.stats.iterations == 80
        assert sa.stats.proposed > 0
        assert 0 <= sa.stats.acceptance_rate <= 1
        assert sa.stats.operator_uses

    def test_deterministic_under_seed(self):
        _, _, sa1 = self.make(iterations=50, seed=42)
        _, _, sa2 = self.make(iterations=50, seed=42)
        r1, r2 = sa1.run(), sa2.run()
        assert sum(sa1.best_costs) == pytest.approx(sum(sa2.best_costs))

    def test_temperature_cools(self):
        _, _, sa = self.make()
        assert sa._temperature(0) > sa._temperature(59)


class TestMappingEngine:
    def test_sa_improves_over_baseline(self):
        g = build("TF")
        arch = g_arch()
        baseline = MappingEngine(
            arch, settings=MappingEngineSettings(sa=SASettings(iterations=0))
        ).map(g, batch=16)
        optimized = MappingEngine(
            arch,
            settings=MappingEngineSettings(
                sa=SASettings(iterations=200, seed=7)
            ),
        ).map(g, batch=16)
        assert optimized.edp < baseline.edp

    def test_baseline_has_no_sa_stats(self):
        g = chain_graph(3)
        result = MappingEngine(
            small_arch(),
            settings=MappingEngineSettings(sa=SASettings(iterations=0)),
        ).map(g, batch=4)
        assert result.sa_stats is None
        assert result.delay > 0

    def test_result_schemes_are_valid(self):
        g = chain_graph(4)
        arch = small_arch()
        result = MappingEngine(
            arch,
            settings=MappingEngineSettings(sa=SASettings(iterations=50)),
        ).map(g, batch=4)
        for lms in result.lmss:
            validate_lms(g, lms, arch.n_cores, arch.n_dram)

    def test_batch_one_latency_mode(self):
        g = chain_graph(3)
        result = MappingEngine(
            small_arch(),
            settings=MappingEngineSettings(sa=SASettings(iterations=0)),
        ).map(g, batch=1)
        assert result.delay > 0
        for grp in result.groups:
            assert grp.batch_unit == 1
