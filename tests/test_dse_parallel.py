"""Serial vs. parallel DSE equivalence (the ``workers=N`` driver).

The contract: for any worker count, ``explore`` returns the same
candidates in the same order with bit-identical scores, energies and
delays, and the same winning architecture — parallelism only changes
wall-clock time.
"""

import pytest

from repro.core.sa import SASettings
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    Workload,
    enumerate_candidates,
)
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def tiny_graph(n=3):
    g = DNNGraph("tiny")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


def small_candidates():
    grid = DseGrid(
        tops=8, cuts=(1, 2), dram_bw_per_tops=(1.0,), noc_bw_gbps=(32,),
        d2d_ratio=(0.5,), glb_kb=(512, 1024), macs_per_core=(1024,),
    )
    return enumerate_candidates(grid)


def make_explorer(seed_stride=0, iterations=8):
    return DesignSpaceExplorer(
        [Workload(tiny_graph(), batch=2)],
        sa_settings=SASettings(iterations=iterations, seed=11),
        seed_stride=seed_stride,
    )


def assert_reports_identical(a, b):
    assert [r.score for r in a.results] == [r.score for r in b.results]
    assert [r.energy for r in a.results] == [r.energy for r in b.results]
    assert [r.delay for r in a.results] == [r.delay for r in b.results]
    assert [r.arch for r in a.results] == [r.arch for r in b.results]
    assert a.best.arch == b.best.arch
    assert a.best.score == b.best.score


class TestSerialParallelEquivalence:
    def test_workers_4_matches_serial(self):
        candidates = small_candidates()
        explorer = make_explorer()
        serial = explorer.explore(candidates, workers=1)
        parallel = explorer.explore(candidates, workers=4)
        assert_reports_identical(serial, parallel)

    def test_seed_stride_is_order_independent(self):
        candidates = small_candidates()
        explorer = make_explorer(seed_stride=101)
        serial = explorer.explore(candidates, workers=1)
        parallel = explorer.explore(candidates, workers=4)
        assert_reports_identical(serial, parallel)

    def test_more_workers_than_candidates(self):
        candidates = small_candidates()[:2]
        explorer = make_explorer()
        serial = explorer.explore(candidates, workers=1)
        parallel = explorer.explore(candidates, workers=8)
        assert_reports_identical(serial, parallel)

    def test_workers_none_uses_all_cpus(self):
        candidates = small_candidates()[:2]
        explorer = make_explorer(iterations=2)
        report = explorer.explore(candidates, workers=None)
        assert len(report.results) == len(candidates)

    def test_seed_stride_changes_search_but_not_determinism(self):
        candidates = small_candidates()
        strided = make_explorer(seed_stride=101).explore(candidates)
        strided_again = make_explorer(seed_stride=101).explore(candidates)
        assert_reports_identical(strided, strided_again)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            make_explorer().explore([], workers=4)


class TestPersistentPool:
    def test_pool_reused_across_explores(self):
        from repro.perf import PERF

        candidates = small_candidates()
        explorer = make_explorer(iterations=4)
        created0 = PERF.get("dse.pool.created")
        serial = explorer.explore(candidates, workers=1)
        first = explorer.explore(candidates, workers=2)
        second = explorer.explore(candidates, workers=2)
        explorer.close()
        assert_reports_identical(serial, first)
        assert_reports_identical(serial, second)
        # One pool served both parallel explorations.
        assert PERF.get("dse.pool.created") == created0 + 1

    def test_different_worker_count_recreates_pool(self):
        from repro.perf import PERF

        candidates = small_candidates()
        explorer = make_explorer(iterations=2)
        created0 = PERF.get("dse.pool.created")
        explorer.explore(candidates, workers=2)
        explorer.explore(candidates, workers=3)
        explorer.close()
        assert PERF.get("dse.pool.created") == created0 + 2

    def test_close_is_idempotent_and_context_manager(self):
        candidates = small_candidates()[:2]
        with make_explorer(iterations=2) as explorer:
            report = explorer.explore(candidates, workers=2)
            assert len(report.results) == 2
            explorer.close()
            explorer.close()

    def test_explorer_picklable_with_live_pool(self):
        """Worker shipping must not try to pickle the pool itself."""
        import pickle

        explorer = make_explorer(iterations=2)
        explorer.explore(small_candidates()[:2], workers=2)
        clone = pickle.loads(pickle.dumps(explorer))
        assert clone._pool is None
        explorer.close()

    def test_prepare_compiles_workload_tables(self):
        from repro.compiled.graph import _COMPILED

        explorer = make_explorer()
        explorer.prepare()
        for wl in explorer.workloads:
            assert wl.graph in _COMPILED
