"""Tests for serialization round-trips and the CLI."""

import json

import pytest

from repro.arch import g_arch, s_arch, t_arch
from repro.cli import build_parser, main
from repro.core import MappingEngine, MappingEngineSettings, SASettings
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.io import (
    SerializationError,
    arch_from_dict,
    arch_to_dict,
    lms_from_dict,
    lms_to_dict,
    load_arch,
    load_mapping,
    mapping_result_summary,
    save_arch,
    save_mapping,
)
from repro.workloads.models import build


class TestArchSerialization:
    @pytest.mark.parametrize("preset", [s_arch, g_arch, t_arch])
    def test_roundtrip(self, preset):
        arch = preset()
        assert arch_from_dict(arch_to_dict(arch)) == arch

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "arch.json"
        save_arch(g_arch(), path)
        assert load_arch(path) == g_arch()

    def test_logic_overhead_preserved(self):
        data = arch_to_dict(t_arch())
        assert data["logic_overhead"] == 2.5
        assert arch_from_dict(data).logic_overhead == 2.5

    def test_bad_record_raises(self):
        with pytest.raises(SerializationError):
            arch_from_dict({"cores_x": 4})


class TestMappingSerialization:
    def make_lmss(self):
        graph = build("TF")
        arch = g_arch()
        groups = partition_graph(graph, arch, batch=8)
        return graph, arch, [initial_lms(graph, g, arch) for g in groups[:3]]

    def test_lms_roundtrip(self):
        _, _, lmss = self.make_lmss()
        for lms in lmss:
            back = lms_from_dict(lms_to_dict(lms))
            assert back.group == lms.group
            for name in lms.group.layers:
                assert back.scheme(name) == lms.scheme(name)

    def test_file_roundtrip(self, tmp_path):
        _, _, lmss = self.make_lmss()
        path = tmp_path / "mapping.json"
        save_mapping(lmss, path)
        loaded = load_mapping(path)
        assert len(loaded) == len(lmss)
        assert loaded[0].group == lmss[0].group

    def test_loaded_mapping_is_evaluable(self, tmp_path):
        graph, arch, lmss = self.make_lmss()
        path = tmp_path / "mapping.json"
        save_mapping(lmss, path)
        loaded = load_mapping(path)
        from repro.evalmodel import Evaluator
        ev = Evaluator(arch).evaluate_mapping(graph, loaded, batch=8)
        assert ev.delay > 0

    def test_bad_mapping_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(SerializationError):
            load_mapping(path)


class TestSummaries:
    def test_mapping_result_summary_keys(self):
        graph = build("TF")
        result = MappingEngine(
            g_arch(),
            settings=MappingEngineSettings(sa=SASettings(iterations=0)),
        ).map(graph, batch=4)
        summary = mapping_result_summary(result)
        assert summary["delay_s"] == result.delay
        assert summary["n_groups"] == len(result.groups)
        total = (
            summary["energy_intra_j"] + summary["energy_noc_j"]
            + summary["energy_d2d_j"] + summary["energy_dram_j"]
        )
        assert total == pytest.approx(summary["energy_j"])


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        for cmd in ("dse", "map", "compare", "heatmap", "space", "mc"):
            args = parser.parse_args([cmd] if cmd in ("space",) else
                                     [cmd, "--arch", "g-arch"]
                                     if cmd in ("mc", "heatmap", "map",
                                                "compare") else [cmd])
            assert args.command == cmd

    def test_space_command(self, capsys):
        assert main(["space", "--cores", "16", "--layers", "2", "4"]) == 0
        out = capsys.readouterr().out
        assert "log10 Gemini" in out

    def test_mc_command(self, capsys):
        assert main(["mc", "--arch", "s-arch"]) == 0
        out = capsys.readouterr().out
        assert "MC $" in out

    def test_mc_with_json_arch(self, tmp_path, capsys):
        path = tmp_path / "a.json"
        save_arch(g_arch(), path)
        assert main(["mc", "--arch", str(path)]) == 0
        assert "MC $" in capsys.readouterr().out

    def test_unknown_arch_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["mc", "--arch", "nope-arch"])

    def test_map_command_writes_mapping(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        code = main([
            "map", "--model", "TF", "--arch", "g-arch", "--batch", "4",
            "--iters", "5", "--save-mapping", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert load_mapping(out)
