"""Unit tests for the five SA operators and the initial scheme."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchConfig
from repro.core.encoding import LayerGroup, validate_lms
from repro.core.initial import (
    allocate_cores,
    factor_partition,
    initial_lms,
    largest_feasible_partition,
    prime_factors,
    snake_order,
)
from repro.core.operators import (
    OPERATORS,
    op1_change_partition,
    op2_swap_within_layer,
    op3_swap_between_layers,
    op4_move_core,
    op5_change_flow,
)
from repro.units import GB, MB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def arch6x6():
    return ArchConfig(
        cores_x=6, cores_y=6, xcut=2, ycut=1, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB, macs_per_core=1024,
    )


def chain_graph(n=4):
    g = DNNGraph("chain")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=16, out_w=16, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


@pytest.fixture
def setup():
    g = chain_graph()
    arch = arch6x6()
    group = LayerGroup(tuple(g.layer_names()), batch_unit=2)
    lms = initial_lms(g, group, arch)
    return g, arch, lms


class TestInitialHelpers:
    def test_prime_factors(self):
        assert prime_factors(12) == [3, 2, 2]
        assert prime_factors(7) == [7]
        assert prime_factors(1) == []

    def test_factor_partition_product(self):
        layer = chain_graph().layer("l0")
        part = factor_partition(layer, 12, batch_unit=2)
        assert part is not None
        assert part.n_parts == 12
        assert part.feasible_for(layer, 2)

    def test_factor_partition_infeasible(self):
        layer = Layer("t", LayerType.FC, out_h=1, out_w=1, out_k=2, in_c=8)
        # 16 cores cannot split a (1,1,1,2) cube with batch unit 1.
        assert factor_partition(layer, 16, batch_unit=1) is None

    def test_largest_feasible_partition_falls_back(self):
        layer = Layer("t", LayerType.FC, out_h=1, out_w=1, out_k=3, in_c=8)
        part, used = largest_feasible_partition(layer, 16, batch_unit=1)
        assert used <= 3
        assert part.n_parts == used

    def test_snake_order_is_permutation(self):
        order = snake_order(6, 6)
        assert sorted(order) == list(range(36))
        # Consecutive entries are mesh neighbors.
        for a, b in zip(order, order[1:]):
            ax, ay = a % 6, a // 6
            bx, by = b % 6, b // 6
            assert abs(ax - bx) + abs(ay - by) == 1

    def test_allocate_cores_sums_to_total(self):
        shares = allocate_cores([10.0, 1.0, 1.0], 12)
        assert sum(shares) == 12
        assert min(shares) >= 1
        assert shares[0] > shares[1]


class TestInitialLms:
    def test_is_valid(self, setup):
        g, arch, lms = setup
        validate_lms(g, lms, arch.n_cores, arch.n_dram)

    def test_uses_most_cores(self, setup):
        g, arch, lms = setup
        # Equal layers: each should get ~9 of 36 cores.
        assert lms.total_cores() >= arch.n_cores * 0.75

    def test_allocation_tracks_compute(self):
        g = DNNGraph("uneven")
        g.add_layer(Layer("big", LayerType.CONV, out_h=32, out_w=32,
                          out_k=64, in_c=64, kernel_r=3, kernel_s=3,
                          pad_h=1, pad_w=1))
        g.add_layer(Layer("small", LayerType.CONV, out_h=32, out_w=32,
                          out_k=4, in_c=64), inputs=["big"])
        arch = arch6x6()
        group = LayerGroup(("big", "small"), batch_unit=1)
        lms = initial_lms(g, group, arch)
        assert lms.scheme("big").n_cores > lms.scheme("small").n_cores


class TestOperators:
    def test_op1_changes_partition_only(self, setup):
        g, arch, lms = setup
        rng = random.Random(0)
        for _ in range(20):
            out = op1_change_partition(g, lms, rng)
            if out is not None:
                changed = [
                    n for n in lms.group.layers
                    if out.scheme(n).part != lms.scheme(n).part
                ]
                assert len(changed) == 1
                name = changed[0]
                assert out.scheme(name).core_group == \
                    lms.scheme(name).core_group
                validate_lms(g, out, arch.n_cores, arch.n_dram)
                return
        pytest.fail("OP1 never produced a move")

    def test_op2_preserves_core_set(self, setup):
        g, arch, lms = setup
        rng = random.Random(1)
        out = op2_swap_within_layer(g, lms, rng)
        assert out is not None
        for n in lms.group.layers:
            assert set(out.scheme(n).core_group) == \
                set(lms.scheme(n).core_group)
        validate_lms(g, out, arch.n_cores, arch.n_dram)

    def test_op3_exchanges_between_layers(self, setup):
        g, arch, lms = setup
        rng = random.Random(2)
        out = op3_swap_between_layers(g, lms, rng)
        assert out is not None
        validate_lms(g, out, arch.n_cores, arch.n_dram)
        sizes_before = [lms.scheme(n).n_cores for n in lms.group.layers]
        sizes_after = [out.scheme(n).n_cores for n in out.group.layers]
        assert sizes_before == sizes_after

    def test_op4_moves_a_core(self, setup):
        g, arch, lms = setup
        rng = random.Random(3)
        for _ in range(30):
            out = op4_move_core(g, lms, rng)
            if out is not None:
                validate_lms(g, out, arch.n_cores, arch.n_dram)
                total_before = lms.total_cores()
                assert out.total_cores() == total_before
                sizes = sorted(
                    out.scheme(n).n_cores - lms.scheme(n).n_cores
                    for n in lms.group.layers
                )
                assert sizes.count(-1) == 1 and sizes.count(1) == 1
                return
        pytest.fail("OP4 never produced a move")

    def test_op4_can_reach_any_cg_size(self, setup):
        """Paper: repeated OP4 reaches any CG size (reachability)."""
        g, arch, lms = setup
        rng = random.Random(4)
        sizes_seen = {lms.scheme("l0").n_cores}
        current = lms
        for _ in range(300):
            out = op4_move_core(g, current, rng)
            if out is not None:
                current = out
                sizes_seen.add(current.scheme("l0").n_cores)
        assert len(sizes_seen) >= 5

    def test_op5_changes_explicit_fd(self, setup):
        g, arch, lms = setup
        rng = random.Random(5)
        for _ in range(30):
            out = op5_change_flow(g, lms, rng, n_dram=arch.n_dram)
            if out is not None:
                validate_lms(g, out, arch.n_cores, arch.n_dram)
                return
        pytest.fail("OP5 never produced a move")

    def test_operator_registry_order(self):
        assert [name for name, _ in OPERATORS] == \
            ["OP1", "OP2", "OP3", "OP4", "OP5"]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_operator_chains_stay_valid(seed):
    """Any operator sequence preserves encoding validity."""
    g = chain_graph(3)
    arch = arch6x6()
    group = LayerGroup(tuple(g.layer_names()), batch_unit=2)
    lms = initial_lms(g, group, arch)
    rng = random.Random(seed)
    for _ in range(25):
        name, op = OPERATORS[rng.randrange(len(OPERATORS))]
        if op is op5_change_flow:
            out = op(g, lms, rng, n_dram=arch.n_dram)
        else:
            out = op(g, lms, rng)
        if out is not None:
            lms = out
    validate_lms(g, lms, arch.n_cores, arch.n_dram)
