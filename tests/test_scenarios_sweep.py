"""Scenario registry, sweep runner, and the import/sweep CLI commands."""

import json

import pytest

from repro.cli import main as cli_main
from repro.frontend import (
    SCENARIO_REGISTRY,
    Scenario,
    grid_scenarios,
    resolve_arch,
    run_scenario,
    run_sweep,
)
from repro.frontend.scenarios import SWEEP_COLUMNS

FAST = dict(iters=4)


class TestRegistry:
    def test_default_scenarios_cover_the_new_models(self):
        models = {s.model for s in SCENARIO_REGISTRY.values()}
        assert {"BERT", "MBV2", "UNet", "GPT-Dec"} <= models
        assert len(SCENARIO_REGISTRY) >= 8

    def test_register_rejects_duplicates(self):
        from repro.frontend import register_scenario

        name = next(iter(SCENARIO_REGISTRY))
        with pytest.raises(ValueError):
            register_scenario(SCENARIO_REGISTRY[name])

    def test_grid_cross_product(self):
        grid = grid_scenarios(["TF", "UNet"], [1, 8], ["g-arch", "s-arch"])
        assert len(grid) == 8
        assert len({s.name for s in grid}) == 8

    def test_grid_disambiguates_colliding_stems(self):
        # A preset and a file can share a stem; names must stay unique.
        grid = grid_scenarios(["UNet"], [1], ["g-arch", "dir/g-arch.json"])
        assert len({s.name for s in grid}) == 2

    def test_resolve_arch_presets_and_errors(self):
        assert resolve_arch("g-arch").name == "G-Arch"
        assert resolve_arch("S-ARCH").name == "S-Arch"
        with pytest.raises(ValueError):
            resolve_arch("warp-arch")


class TestRunScenario:
    def test_summary_and_artifacts(self, tmp_path):
        sc = Scenario(name="t-unet", model="UNet", batch=2, **FAST)
        summary = run_scenario(sc, out_dir=tmp_path)
        assert summary["delay_s"] > 0
        assert summary["energy_j"] > 0
        assert summary["layers"] == 27
        assert summary["arch"] == "g-arch"
        sc_dir = tmp_path / "t-unet"
        persisted = json.loads((sc_dir / "summary.json").read_text())
        assert persisted["name"] == "t-unet"
        assert (sc_dir / "mapping.json").exists()

    def test_model_path_scenario(self, tmp_path):
        from repro.io import save_graph
        from repro.workloads.models import build

        path = tmp_path / "m.json"
        save_graph(build("UNet"), path)
        sc = Scenario(name="t-file", model=str(path), batch=1, **FAST)
        summary = run_scenario(sc)
        assert summary["model_name"] == "unet"


class TestRunSweep:
    def scenarios(self):
        return [
            Scenario(name="s-unet", model="UNet", batch=1, **FAST),
            Scenario(name="s-gpt", model="GPT-Dec", batch=1, **FAST),
            Scenario(name="s-mbv2", model="MBV2", batch=1, **FAST),
            Scenario(name="s-bert", model="BERT", batch=1, **FAST),
        ]

    def test_acceptance_four_new_scenarios(self, tmp_path):
        # Acceptance criterion: >= 4 new scenarios through the
        # evaluator with per-scenario artifacts.
        summaries = run_sweep(self.scenarios(), out_dir=tmp_path)
        assert len(summaries) == 4
        for s in summaries:
            assert s["delay_s"] > 0 and s["energy_j"] > 0
            assert (tmp_path / s["name"] / "summary.json").exists()
            assert (tmp_path / s["name"] / "mapping.json").exists()
        csv_text = (tmp_path / "sweep.csv").read_text()
        assert csv_text.splitlines()[0] == ",".join(SWEEP_COLUMNS)
        assert len(csv_text.splitlines()) == 5

    def test_parallel_matches_serial(self, tmp_path):
        scenarios = self.scenarios()[:2]
        serial = run_sweep(scenarios, workers=1)
        parallel = run_sweep(scenarios, workers=2)
        assert serial == parallel

    def test_parallel_sweep_merges_perf_counters(self):
        from repro.perf import PERF

        PERF.reset()
        run_sweep(self.scenarios()[:2], workers=2)
        counters = PERF.snapshot()["counters"]
        assert counters, "worker perf snapshots were not merged"
        PERF.reset()

    def test_duplicate_names_rejected(self):
        sc = self.scenarios()[0]
        with pytest.raises(ValueError):
            run_sweep([sc, sc])

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([])

    def test_slug_collisions_rejected(self):
        a = Scenario(name="a b", model="UNet", batch=1, **FAST)
        b = Scenario(name="a_b", model="UNet", batch=1, **FAST)
        with pytest.raises(ValueError, match="collide"):
            run_sweep([a, b])


class TestCli:
    def test_import_command_spec(self, tmp_path, capsys):
        from repro.workloads.models.speczoo import SPEC_DIR

        out = tmp_path / "graph.json"
        rc = cli_main([
            "import", str(SPEC_DIR / "unet.json"), "--out", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "frontend report" in printed
        assert out.exists()
        data = json.loads(out.read_text())
        assert data["format"] == "dnn-graph"

    def test_import_registry_name(self, capsys):
        rc = cli_main(["import", "GPT-Dec"])
        assert rc == 0
        assert "gpt_decode" in capsys.readouterr().out

    def test_import_unknown_source_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["import", "definitely-not-a-model"])

    def test_map_accepts_spec_path(self, tmp_path, capsys):
        from repro.workloads.models.speczoo import SPEC_DIR

        rc = cli_main([
            "map", "--model", str(SPEC_DIR / "gpt_decode.json"),
            "--batch", "1", "--iters", "4",
        ])
        assert rc == 0
        assert "delay_s" in capsys.readouterr().out

    def test_sweep_command(self, tmp_path, capsys):
        rc = cli_main([
            "sweep", "--scenarios", "unet-b1", "gpt-dec-b1",
            "--iters", "4", "--out", str(tmp_path / "sw"),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "2 scenario" in printed
        assert (tmp_path / "sw" / "sweep.csv").exists()
        assert (tmp_path / "sw" / "unet-b1" / "summary.json").exists()

    def test_sweep_grid_flags(self, tmp_path, capsys):
        rc = cli_main([
            "sweep", "--models", "UNet", "--batches", "1",
            "--archs", "g-arch", "--iters", "4",
            "--out", str(tmp_path / "sw"),
        ])
        assert rc == 0
        assert (tmp_path / "sw" / "sweep.csv").exists()

    def test_sweep_unknown_scenario_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--scenarios", "nope-b1"])

    def test_sweep_unknown_model_exits_before_running(self, tmp_path):
        out = tmp_path / "sw"
        with pytest.raises(SystemExit, match="unknown model"):
            cli_main(["sweep", "--models", "NOPE", "--batches", "1",
                      "--out", str(out)])
        assert not out.exists()

    def test_sweep_unloadable_model_file_exits_before_running(self, tmp_path):
        bad = tmp_path / "model.json"
        bad.write_text("{not json")
        out = tmp_path / "sw"
        with pytest.raises(SystemExit, match="invalid JSON"):
            cli_main(["sweep", "--models", str(bad), "--batches", "1",
                      "--out", str(out)])
        assert not out.exists()

    def test_sweep_unknown_arch_exits_before_running(self, tmp_path):
        out = tmp_path / "sw"
        with pytest.raises(SystemExit, match="unknown architecture"):
            cli_main(["sweep", "--models", "UNet", "--batches", "1",
                      "--archs", "warp-arch", "--out", str(out)])
        assert not out.exists()

    def test_malformed_arch_json_exits_cleanly(self, tmp_path):
        bad = tmp_path / "arch.json"
        bad.write_text('{"cores_x": 4}')
        with pytest.raises(SystemExit, match="bad architecture record"):
            cli_main(["map", "--model", "UNet", "--arch", str(bad),
                      "--iters", "2"])
