"""ONNX importer tests.

The protobuf walker is duck-typed, so most tests drive it with plain
stub objects and run with or without the optional ``onnx`` package;
the real-protobuf round-trip at the bottom self-skips when ``onnx``
is absent (CI runs both legs).
"""

from types import SimpleNamespace as NS

import pytest

from repro.frontend import run_pipeline
from repro.frontend.onnx_import import (
    OnnxImportError,
    attr_dict,
    onnx_graph_to_ir,
)
from repro.workloads.layer import LayerType


# ----------------------------------------------------------------------
# Stub protobuf pieces
# ----------------------------------------------------------------------


def attr_i(name, v):
    return NS(name=name, type=2, i=v)


def attr_ints(name, v):
    return NS(name=name, type=7, ints=list(v))


def node(op, inputs, outputs, name="", attrs=()):
    return NS(op_type=op, input=list(inputs), output=list(outputs),
              name=name, attribute=list(attrs))


def vi(name, dims):
    return NS(name=name, type=NS(tensor_type=NS(
        shape=NS(dim=[NS(dim_value=d) for d in dims]))))


def init(name, dims):
    return NS(name=name, dims=list(dims))


def graph(nodes, inputs, initializers, name="stub"):
    return NS(name=name, node=list(nodes), input=list(inputs),
              initializer=list(initializers))


def cnn_graph():
    return graph(
        name="toy_cnn",
        inputs=[vi("x", [1, 3, 32, 32])],
        initializers=[
            init("w1", [16, 3, 3, 3]), init("b1", [16]),
            init("w2", [16, 1, 3, 3]),
            init("wfc", [4096, 10]),
        ],
        nodes=[
            node("Conv", ["x", "w1", "b1"], ["c1"], "conv1", [
                attr_ints("kernel_shape", [3, 3]),
                attr_ints("strides", [1, 1]),
                attr_ints("pads", [1, 1, 1, 1]),
            ]),
            node("Relu", ["c1"], ["r1"], "relu1"),
            node("MaxPool", ["r1"], ["p1"], "pool1", [
                attr_ints("kernel_shape", [2, 2]),
                attr_ints("strides", [2, 2]),
            ]),
            node("Conv", ["p1", "w2"], ["c2"], "convdw", [
                attr_ints("kernel_shape", [3, 3]),
                attr_ints("pads", [1, 1, 1, 1]),
                attr_i("group", 16),
            ]),
            node("Add", ["c2", "p1"], ["a1"], "res"),
            node("Flatten", ["a1"], ["f1"], "flat"),
            node("Gemm", ["f1", "wfc"], ["out"], "fc"),
        ],
    )


def attention_graph():
    return graph(
        name="toy_attn",
        inputs=[vi("x", [1, 64, 256])],
        initializers=[init("wq", [256, 256]), init("wk", [256, 256]),
                      init("wv", [256, 256])],
        nodes=[
            node("MatMul", ["x", "wq"], ["q"], "q"),
            node("MatMul", ["x", "wk"], ["k"], "k"),
            node("MatMul", ["x", "wv"], ["v"], "v"),
            node("Transpose", ["k"], ["kT"], "kT",
                 [attr_ints("perm", [0, 2, 1])]),
            node("MatMul", ["q", "kT"], ["scores"], "qk"),
            node("Softmax", ["scores"], ["probs"], "softmax"),
            node("MatMul", ["probs", "v"], ["ctx"], "av"),
        ],
    )


# ----------------------------------------------------------------------


class TestAttrDict:
    def test_int_ints_and_unknown(self):
        n = node("X", [], [], attrs=[
            attr_i("group", 4),
            attr_ints("pads", [1, 2, 1, 2]),
            NS(name="weird", type=99),
        ])
        attrs = attr_dict(n)
        assert attrs == {"group": 4, "pads": [1, 2, 1, 2]}

    def test_string_attr_decodes(self):
        n = node("X", [], [], attrs=[NS(name="mode", type=3, s=b"nearest")])
        assert attr_dict(n)["mode"] == "nearest"


class TestWalker:
    def test_cnn_ops_and_shapes(self):
        ir, report = onnx_graph_to_ir(cnn_graph())
        assert ir.input_shape == (32, 32, 3)
        ops = {n.name: n.op for n in ir.nodes.values()}
        assert ops["conv1"] == "conv"
        assert ops["pool1"] == "pool"
        assert ops["fc"] == "fc"
        # bias initializer recorded as fused
        assert any(e.kind == "fused" for e in report.entries)

    def test_cnn_lowers_to_valid_graph(self):
        ir, report = onnx_graph_to_ir(cnn_graph())
        graph_, report = run_pipeline(ir, report)
        graph_.validate()
        kinds = {l.name: l.kind for l in graph_.layers()}
        assert kinds["conv1"] is LayerType.CONV
        assert kinds["convdw"] is LayerType.DWCONV
        assert kinds["res"] is LayerType.ELTWISE
        # Flatten + Gemm becomes a full-frame conv (16x16 ifmap).
        fc = graph_.layer("fc")
        assert fc.out_k == 10 and fc.macs(1) == 10 * 16 * 16 * 16

    def test_attention_recovers_transpose(self):
        ir, report = onnx_graph_to_ir(attention_graph())
        graph_, report = run_pipeline(ir, report)
        graph_.validate()
        qk = graph_.layer("qk")
        assert qk.kind is LayerType.MATMUL
        assert (qk.out_h, qk.out_k, qk.in_c) == (64, 64, 256)
        av = graph_.layer("av")
        assert (av.out_h, av.out_k, av.in_c) == (64, 256, 64)
        # Weight MatMuls became token-wise 1x1 convs.
        assert graph_.layer("q").kind is LayerType.CONV
        assert graph_.layer("q").weight_elems() == 256 * 256

    def test_unknown_op_is_reported(self):
        g = graph(
            inputs=[vi("x", [1, 4, 8, 8])],
            initializers=[],
            nodes=[node("SpatialMagic", ["x"], ["y"], "m")],
        )
        ir, report = onnx_graph_to_ir(g)
        graph_, report = run_pipeline(ir, report)
        assert not report.is_exact
        assert graph_.layer("m").kind is LayerType.VECTOR

    def test_constant_only_expressions_skipped(self):
        g = graph(
            inputs=[vi("x", [1, 4, 8, 8])],
            initializers=[init("shape_src", [4])],
            nodes=[
                node("Shape", ["shape_src"], ["s"], "shape"),
                node("Reshape", ["x", "s"], ["y"], "reshape"),
                node("Relu", ["y"], ["z"], "act"),
            ],
        )
        ir, _ = onnx_graph_to_ir(g)
        assert "shape" not in ir.nodes
        graph_, _ = run_pipeline(ir)
        assert graph_.layer_names() == ["act"]

    def test_dynamic_input_dims_raise(self):
        g = graph(
            inputs=[vi("x", [0, 3, 0, 32])],
            initializers=[],
            nodes=[node("Relu", ["x"], ["y"], "r")],
        )
        with pytest.raises(OnnxImportError):
            onnx_graph_to_ir(g)

    def test_secondary_input_is_approximated_loudly(self):
        g = graph(
            inputs=[vi("x", [1, 3, 16, 16]), vi("mask", [1, 16])],
            initializers=[],
            nodes=[
                node("Relu", ["x"], ["a"], "a"),
                node("Relu", ["mask"], ["b"], "b"),
            ],
        )
        ir, report = onnx_graph_to_ir(g)
        assert not report.is_exact
        assert any(e.node == "mask" for e in report.approximated)

    def test_no_data_input_raises(self):
        g = graph(inputs=[], initializers=[], nodes=[])
        with pytest.raises(OnnxImportError):
            onnx_graph_to_ir(g)

    def test_constant_node_weights(self):
        # tf2onnx-style export: conv weights come from a Constant node,
        # not a graph initializer.
        const_w = NS(op_type="Constant", input=[], output=["w"],
                     name="wconst", attribute=[
                         NS(name="value", type=4, t=NS(dims=[8, 3, 3, 3]))])
        g = graph(
            inputs=[vi("x", [1, 3, 16, 16])],
            initializers=[],
            nodes=[
                const_w,
                node("Conv", ["x", "w"], ["c"], "conv", [
                    attr_ints("kernel_shape", [3, 3]),
                    attr_ints("pads", [1, 1, 1, 1]),
                ]),
            ],
        )
        ir, _ = onnx_graph_to_ir(g)
        assert ir.node("conv").attrs["k"] == 8

    def test_weight_without_shape_raises_import_error(self):
        g = graph(
            inputs=[vi("x", [1, 3, 16, 16])],
            initializers=[init("shape_only", [2])],
            nodes=[
                # An expression over constants: output is constant but
                # its dims are unknown — must be a loud OnnxImportError,
                # not a KeyError.
                node("Mul", ["shape_only", "shape_only"], ["w"], "w"),
                node("Conv", ["x", "w"], ["c"], "conv",
                     [attr_ints("kernel_shape", [3, 3])]),
            ],
        )
        with pytest.raises(OnnxImportError, match="shape is unknown"):
            onnx_graph_to_ir(g)

    def test_asymmetric_pads_and_strides(self):
        # TF SAME padding on a stride-2 conv: pads [0, 0, 1, 1].
        g = graph(
            inputs=[vi("x", [1, 3, 224, 224])],
            initializers=[init("w", [32, 3, 3, 3])],
            nodes=[node("Conv", ["x", "w"], ["c"], "conv", [
                attr_ints("kernel_shape", [3, 3]),
                attr_ints("strides", [2, 2]),
                attr_ints("pads", [0, 0, 1, 1]),
            ])],
        )
        ir, report = onnx_graph_to_ir(g)
        graph_, report = run_pipeline(ir, report)
        conv = graph_.layer("conv")
        # begin+end pad sum of 1 rounds up to symmetric 1 -> out 112,
        # matching the framework's SAME arithmetic, and is loudly
        # reported as an approximation (is_exact goes False).
        assert (conv.out_h, conv.out_w) == (112, 112)
        assert any("asymmetric pads" in e.detail
                   for e in report.approximated)
        assert not report.is_exact

    def test_pool_default_stride_is_one(self):
        # ONNX defaults pool strides to 1, not to the kernel size.
        g = graph(
            inputs=[vi("x", [1, 4, 16, 16])],
            initializers=[],
            nodes=[node("MaxPool", ["x"], ["y"], "p",
                        [attr_ints("kernel_shape", [3, 3])])],
        )
        ir, report = onnx_graph_to_ir(g)
        graph_, _ = run_pipeline(ir, report)
        p = graph_.layer("p")
        assert p.stride == 1
        assert (p.out_h, p.out_w) == (14, 14)

    def test_gemm_two_activations_plus_bias_is_matmul(self):
        g = graph(
            inputs=[vi("x", [1, 8, 16])],
            initializers=[init("bias", [16])],
            nodes=[
                node("Relu", ["x"], ["a"], "a"),
                node("Relu", ["x"], ["b"], "b"),
                node("Gemm", ["a", "b", "bias"], ["y"], "g",
                     [attr_i("transB", 1)]),
            ],
        )
        ir, report = onnx_graph_to_ir(g)
        assert ir.node("g").op == "matmul"
        assert ir.node("g").inputs == ["a", "b"]
        assert any(e.kind == "fused" and e.op == "Gemm"
                   for e in report.entries)
        graph_, _ = run_pipeline(ir, report)
        gm = graph_.layer("g")
        assert gm.kind is LayerType.MATMUL
        assert set(graph_.predecessors("g")) == {"a", "b"}

    def test_gemm_activation_bias_kept_as_add(self):
        # Gemm(x, W, r) with r an activation: the r dependency must
        # survive as an explicit elementwise add, not vanish.
        g = graph(
            inputs=[vi("x", [1, 16])],
            initializers=[init("W", [16, 16])],
            nodes=[
                node("Relu", ["x"], ["r"], "r"),
                node("Gemm", ["x", "W", "r"], ["y"], "g"),
                node("Relu", ["y"], ["out"], "out"),
            ],
        )
        ir, report = onnx_graph_to_ir(g)
        graph_, report = run_pipeline(ir, report)
        graph_.validate()
        adds = [l for l in graph_.layers() if l.kind is LayerType.ELTWISE]
        assert len(adds) == 1
        assert "r" in graph_.predecessors(adds[0].name)
        assert any("explicit" in e.detail for e in report.lowered)

    def test_weight_first_matmul_and_gemm(self):
        # MatMul(W, x): output features are W's rows, not its columns.
        g = graph(
            inputs=[vi("x", [1, 128, 64])],
            initializers=[init("W", [256, 64]), init("G", [256, 10])],
            nodes=[
                node("MatMul", ["W", "x"], ["y"], "wx"),
                node("Gemm", ["G", "y"], ["z"], "gy",
                     [attr_i("transA", 1)]),
            ],
        )
        ir, _ = onnx_graph_to_ir(g)
        assert ir.node("wx").attrs["k"] == 256
        # transA=1: features come from G's columns.
        assert ir.node("gy").attrs["k"] == 10

    def test_auto_pad_same_is_reported(self):
        g = graph(
            inputs=[vi("x", [1, 3, 224, 224])],
            initializers=[init("w", [32, 3, 3, 3])],
            nodes=[node("Conv", ["x", "w"], ["c"], "conv", [
                attr_ints("kernel_shape", [3, 3]),
                attr_ints("strides", [2, 2]),
                NS(name="auto_pad", type=3, s=b"SAME_UPPER"),
            ])],
        )
        ir, report = onnx_graph_to_ir(g)
        graph_, report = run_pipeline(ir, report)
        conv = graph_.layer("conv")
        assert (conv.out_h, conv.out_w) == (112, 112)
        assert any("auto_pad" in e.detail for e in report.lowered)

    def test_resize_scale_from_initializer(self):
        scales = NS(name="sc", dims=[4], float_data=[1.0, 1.0, 4.0, 4.0])
        g = NS(name="rs", node=[
            node("Resize", ["x", "roi", "sc"], ["y"], "up4"),
        ], input=[vi("x", [1, 8, 16, 16])], initializer=[
            init("roi", [0]), scales,
        ])
        ir, report = onnx_graph_to_ir(g)
        assert ir.node("up4").attrs["scale"] == 4
        assert report.is_exact
        assert any(e.node == "up4" and "4x" in e.detail
                   for e in report.lowered)

    def test_resize_unknown_scale_is_approximated(self):
        g = graph(
            inputs=[vi("x", [1, 8, 16, 16])],
            initializers=[init("roi", [0]), init("sc", [4])],
            nodes=[node("Resize", ["x", "roi", "sc"], ["y"], "up")],
        )
        ir, report = onnx_graph_to_ir(g)
        assert ir.node("up").attrs["scale"] == 2
        assert not report.is_exact

    def test_approximated_op_with_incompatible_operands_degrades(self):
        # An unknown binary op whose operands are not elementwise-
        # compatible must still import (as a unary vector pass).
        g = graph(
            inputs=[vi("x", [1, 4, 8, 8])],
            initializers=[init("w", [8, 4, 1, 1])],
            nodes=[
                node("Conv", ["x", "w"], ["c"], "widen",
                     [attr_ints("kernel_shape", [1, 1])]),
                node("GatherElements", ["x", "c"], ["y"], "odd"),
            ],
        )
        ir, report = onnx_graph_to_ir(g)
        graph_, report = run_pipeline(ir, report)
        graph_.validate()
        assert graph_.layer("odd").kind is LayerType.VECTOR
        assert not report.is_exact
        assert any("re-approximated" in e.detail
                   for e in report.approximated)

    def test_se_block_broadcast_mul(self):
        # Squeeze-excitation gating: Mul([h,w,k], [1,1,k]).
        g = graph(
            inputs=[vi("x", [1, 8, 14, 14])],
            initializers=[init("w", [8, 8, 1, 1])],
            nodes=[
                node("GlobalAveragePool", ["x"], ["s"], "squeeze"),
                node("Conv", ["s", "w"], ["e"], "excite",
                     [attr_ints("kernel_shape", [1, 1])]),
                node("Sigmoid", ["e"], ["gate"], "gate"),
                node("Mul", ["x", "gate"], ["y"], "scale"),
            ],
        )
        ir, report = onnx_graph_to_ir(g)
        graph_, _ = run_pipeline(ir, report)
        graph_.validate()
        scale = graph_.layer("scale")
        assert scale.kind is LayerType.ELTWISE
        assert (scale.out_h, scale.out_w, scale.out_k) == (14, 14, 8)

    def test_unnamed_nodes_get_unique_names(self):
        g = graph(
            inputs=[vi("x", [1, 4, 8, 8])],
            initializers=[],
            nodes=[
                node("Relu", ["x"], ["a"]),
                node("Relu", ["a"], ["b"]),
            ],
        )
        ir, _ = onnx_graph_to_ir(g)
        assert len(ir.nodes) == 2
        assert len(set(ir.nodes)) == 2


class TestRealOnnx:
    """End-to-end with the real protobuf (skips when onnx is absent)."""

    def test_import_onnx_file(self, tmp_path):
        onnx = pytest.importorskip("onnx")
        from onnx import TensorProto, helper
        import numpy as np

        w = np.zeros((8, 3, 3, 3), dtype=np.float32)
        model = helper.make_model(helper.make_graph(
            [
                helper.make_node("Conv", ["x", "w"], ["c"], name="conv",
                                 kernel_shape=[3, 3], pads=[1, 1, 1, 1]),
                helper.make_node("Relu", ["c"], ["y"], name="act"),
            ],
            "real_toy",
            [helper.make_tensor_value_info("x", TensorProto.FLOAT,
                                           [1, 3, 16, 16])],
            [helper.make_tensor_value_info("y", TensorProto.FLOAT,
                                           [1, 8, 16, 16])],
            initializer=[helper.make_tensor(
                "w", TensorProto.FLOAT, w.shape, w.flatten())],
        ), opset_imports=[helper.make_opsetid("", 17)])
        path = tmp_path / "toy.onnx"
        onnx.save(model, str(path))

        from repro.frontend import import_onnx

        graph_, report = import_onnx(path)
        graph_.validate()
        assert graph_.layer("conv").kind is LayerType.CONV
        assert graph_.layer("conv").out_k == 8
        assert [e.node for e in report.fused] == ["act"]

    def test_import_onnx_missing_package_message(self, tmp_path, monkeypatch):
        try:
            import onnx  # noqa: F401
            pytest.skip("onnx installed; the gate cannot trip")
        except ImportError:
            pass
        from repro.frontend import import_onnx

        with pytest.raises(OnnxImportError, match="optional 'onnx'"):
            import_onnx(tmp_path / "nope.onnx")
