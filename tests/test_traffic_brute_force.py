"""Brute-force cross-validation of the traffic analyzer.

The interval-intersection traffic math (Sec V-B2) is validated against
an element-level enumeration: for tiny layer pairs we walk every ofmap
element of the consumer, find the exact set of producer ofmap elements
in its receptive field, attribute each to the producer part that owns
it, and compare per-(src core, dst core) byte counts with the
analyzer's volumes.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchConfig
from repro.core.encoding import (
    IMPLICIT,
    FlowOfData,
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    Partition,
)
from repro.core.parser import parse_lms
from repro.evalmodel import Evaluator, GroupTrafficAnalyzer
from repro.units import GB, MB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def arch16():
    return ArchConfig(
        cores_x=4, cores_y=4, xcut=1, ycut=1, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=8 * MB,
        macs_per_core=1024,
    )


def build_pair(kind, kernel, stride, pad, k_out, k_in):
    """A producer conv feeding one consumer layer of ``kind``."""
    g = DNNGraph("pair")
    out_h = 6
    in_h = (out_h - 1) * stride + kernel - 2 * pad
    g.add_layer(Layer("p", LayerType.CONV, out_h=in_h, out_w=in_h,
                      out_k=k_in, in_c=3))
    g.add_layer(
        Layer("c", kind, out_h=out_h, out_w=out_h, out_k=k_out,
              in_c=k_in, kernel_r=kernel, kernel_s=kernel, stride=stride,
              pad_h=pad, pad_w=pad),
        inputs=["p"],
    )
    return g


def brute_force_volumes(graph, parsed, consumer_name, producer_name):
    """Element-level (src_core, dst_core) -> bytes for one dependency.

    Walks consumer ofmap elements; each needs a halo of producer
    elements.  A (producer element, consumer part) pair transfers one
    byte — matching the analyzer's convention that each consumer part
    fetches its required region once (deduplicated within the part).
    """
    consumer = graph.layer(consumer_name)
    producer = graph.layer(producer_name)
    volumes = {}
    for dest in parsed.layer(consumer_name).parts:
        r = dest.region
        needed = set()
        for (h, w, k) in itertools.product(
            range(r.h_lo, r.h_hi), range(r.w_lo, r.w_hi),
            range(r.k_lo, r.k_hi),
        ):
            if consumer.is_channelwise:
                channels = [k]
            else:
                channels = range(producer.out_k)
            for (dr, ds) in itertools.product(
                range(consumer.kernel_r), range(consumer.kernel_s)
            ):
                ih = h * consumer.stride - consumer.pad_h + dr
                iw = w * consumer.stride - consumer.pad_w + ds
                if not (0 <= ih < producer.out_h and 0 <= iw < producer.out_w):
                    continue
                for c in channels:
                    needed.add((ih, iw, c))
        for (ih, iw, c) in needed:
            src_core = None
            for src in parsed.layer(producer_name).parts:
                s = src.region
                if (s.h_lo <= ih < s.h_hi and s.w_lo <= iw < s.w_hi
                        and s.k_lo <= c < s.k_hi):
                    src_core = src.core
                    break
            assert src_core is not None, "producer parts must tile ofmap"
            if src_core == dest.core:
                continue
            key = (src_core, dest.core)
            volumes[key] = volumes.get(key, 0) + 1
    return volumes


def analyzer_volumes(graph, arch, lms, consumer_name):
    evaluator = Evaluator(arch)
    parsed = parse_lms(graph, lms)
    intra = evaluator._intra_results(parsed)
    analyzer = GroupTrafficAnalyzer(
        graph, arch, evaluator.topo, collect_flows=True
    )
    traffic = analyzer.analyze(parsed, lms, intra, {})
    volumes = {}
    for f in traffic.flows:
        if f.kind != "ifmap" or f.src[0] != "core":
            continue
        key = (
            evaluator.topo.core_index(f.src),
            evaluator.topo.core_index(f.dst),
        )
        volumes[key] = volumes.get(key, 0) + f.volume
    # Normalize out the intra-core refetch multiplier (1 for 8 MB GLB
    # on these tiny layers).
    results = intra[consumer_name]
    assert all(r.if_fetches == 1 for r in results)
    return volumes, parsed


CASES = [
    # kind, kernel, stride, pad, part_p, part_c
    (LayerType.CONV, 3, 1, 1, Partition(2, 1, 1, 2), Partition(2, 2, 1, 1)),
    (LayerType.CONV, 1, 1, 0, Partition(1, 1, 1, 4), Partition(4, 1, 1, 1)),
    (LayerType.CONV, 3, 2, 0, Partition(2, 2, 1, 1), Partition(1, 2, 1, 2)),
    (LayerType.POOL, 2, 2, 0, Partition(1, 1, 1, 4), Partition(1, 1, 1, 4)),
    (LayerType.POOL, 3, 1, 1, Partition(2, 1, 1, 2), Partition(2, 1, 1, 2)),
]


@pytest.mark.parametrize("kind,kernel,stride,pad,part_p,part_c", CASES)
def test_analyzer_matches_brute_force(kind, kernel, stride, pad,
                                      part_p, part_c):
    k_out, k_in = 4, 4
    graph = build_pair(kind, kernel, stride, pad, k_out, k_in)
    arch = arch16()
    group = LayerGroup(("p", "c"), batch_unit=1)
    n_p, n_c = part_p.n_parts, part_c.n_parts
    lms = LayerGroupMapping(group, {
        "p": MappingScheme(part_p, tuple(range(n_p)),
                           FlowOfData(0, 0, IMPLICIT)),
        "c": MappingScheme(
            part_c, tuple(range(n_p, n_p + n_c)),
            FlowOfData(
                IMPLICIT,
                0 if kind is LayerType.CONV else IMPLICIT,
                0,
            ),
        ),
    })
    volumes, parsed = analyzer_volumes(graph, arch, lms, "c")
    expected = brute_force_volumes(graph, parsed, "c", "p")
    assert set(volumes) == set(expected)
    for key in expected:
        assert volumes[key] == pytest.approx(expected[key]), key


@settings(max_examples=12, deadline=None)
@given(
    ph=st.integers(1, 3), pk=st.integers(1, 2),
    ch=st.integers(1, 3), cw=st.integers(1, 2),
)
def test_analyzer_matches_brute_force_random_partitions(ph, pk, ch, cw):
    graph = build_pair(LayerType.CONV, 3, 1, 1, 4, 4)
    arch = arch16()
    group = LayerGroup(("p", "c"), batch_unit=1)
    part_p = Partition(ph, 1, 1, pk)
    part_c = Partition(ch, cw, 1, 1)
    n_p, n_c = part_p.n_parts, part_c.n_parts
    if n_p + n_c > arch.n_cores:
        return
    lms = LayerGroupMapping(group, {
        "p": MappingScheme(part_p, tuple(range(n_p)),
                           FlowOfData(0, 0, IMPLICIT)),
        "c": MappingScheme(part_c, tuple(range(n_p, n_p + n_c)),
                           FlowOfData(IMPLICIT, 0, 0)),
    })
    volumes, parsed = analyzer_volumes(graph, arch, lms, "c")
    expected = brute_force_volumes(graph, parsed, "c", "p")
    total_got = sum(volumes.values())
    total_want = sum(expected.values())
    assert total_got == pytest.approx(total_want)
