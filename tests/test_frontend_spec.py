"""Declarative spec frontend: macros, shape inference, the spec zoo."""

import json

import pytest

from repro.frontend import parse_spec, spec_to_graph
from repro.frontend.spec import SpecError, import_spec, load_spec
from repro.workloads.layer import LayerType
from repro.workloads.models.speczoo import SPEC_DIR


def small_spec(**overrides):
    spec = {
        "name": "tiny",
        "input": {"h": 8, "w": 8, "c": 3},
        "layers": [
            {"op": "conv", "k": 8, "kernel": 3, "name": "c1"},
            {"op": "relu", "name": "a1"},
            {"op": "pool", "kernel": 2, "name": "p1"},
            {"op": "fc", "k": 10, "name": "head"},
        ],
    }
    spec.update(overrides)
    return spec


class TestSpecBasics:
    def test_builds_and_validates(self):
        graph, report = spec_to_graph(small_spec())
        graph.validate()
        assert graph.layer_names() == ["c1", "p1", "head"]
        assert [e.node for e in report.fused] == ["a1"]

    def test_shape_inference(self):
        graph, _ = spec_to_graph(small_spec())
        c1 = graph.layer("c1")
        assert (c1.out_h, c1.out_w, c1.out_k, c1.in_c) == (8, 8, 8, 3)
        p1 = graph.layer("p1")
        assert (p1.out_h, p1.out_w, p1.out_k) == (4, 4, 8)

    def test_fc_after_spatial_becomes_full_frame_conv(self):
        graph, _ = spec_to_graph(small_spec())
        head = graph.layer("head")
        assert head.kind is LayerType.CONV
        assert (head.kernel_r, head.kernel_s) == (4, 4)
        assert head.in_c == 8
        # Same MACs as the flattened FC: 10 * (4*4*8).
        assert head.macs(1) == 10 * 4 * 4 * 8

    def test_missing_fields_raise(self):
        with pytest.raises(SpecError):
            parse_spec({"name": "x"})
        with pytest.raises(SpecError):
            parse_spec({"name": "x", "input": {"h": 4, "c": 3}, "layers": []})

    def test_unknown_reference_raises(self):
        spec = small_spec()
        spec["layers"][1] = {"op": "relu", "input": "nope"}
        with pytest.raises(SpecError):
            parse_spec(spec)

    def test_bad_expression_raises(self):
        spec = small_spec()
        spec["layers"][0]["k"] = "${undefined_param * 2}"
        with pytest.raises(SpecError):
            parse_spec(spec)

    @pytest.mark.parametrize("expr", [
        "${(1).__class__}",
        "${[c for c in (1,2)]}",
        "${__import__('os').system('true')}",
        "${open('/etc/passwd')}",
        "${'a' * 9}",
    ])
    def test_expressions_are_sandboxed(self, expr):
        # Specs may come from third parties: anything beyond names,
        # numbers and arithmetic must be rejected, not evaluated.
        spec = small_spec()
        spec["layers"][0]["k"] = expr
        with pytest.raises(SpecError):
            parse_spec(spec)


class TestMacros:
    def test_repeat_threads_cursor_and_prefixes_names(self):
        spec = {
            "name": "chain",
            "input": {"h": 4, "w": 4, "c": 4},
            "layers": [
                {"op": "repeat", "count": 3, "name": "b", "body": [
                    {"op": "conv", "k": 4, "kernel": 3, "name": "c"},
                ]},
            ],
        }
        graph, _ = spec_to_graph(spec)
        assert graph.layer_names() == ["b0_c", "b1_c", "b2_c"]
        assert graph.predecessors("b1_c") == ["b0_c"]

    def test_repeat_index_in_expressions(self):
        spec = {
            "name": "widen",
            "input": {"h": 4, "w": 4, "c": 4},
            "layers": [
                {"op": "repeat", "count": 2, "name": "s", "body": [
                    {"op": "conv", "k": "${4 * (i + 1)}", "kernel": 1,
                     "name": "c"},
                ]},
            ],
        }
        graph, _ = spec_to_graph(spec)
        assert graph.layer("s0_c").out_k == 4
        assert graph.layer("s1_c").out_k == 8

    def test_repeat_index_in_repeat_params(self):
        # The loop index must be in scope for the repeat's own params.
        spec = {
            "name": "stages",
            "input": {"h": 4, "w": 4, "c": 8},
            "blocks": {
                "one": [{"op": "conv", "k": "$k", "kernel": 1, "name": "c"}],
            },
            "layers": [
                {"op": "repeat", "count": 3, "name": "s", "block": "one",
                 "params": {"k": "${8 * (i + 1)}"}},
            ],
        }
        graph, _ = spec_to_graph(spec)
        assert [graph.layer(f"s{i}_c").out_k for i in range(3)] == [8, 16, 24]

    def test_block_params_and_prev_in(self):
        spec = {
            "name": "res",
            "input": {"h": 4, "w": 4, "c": 8},
            "blocks": {
                "residual": [
                    {"op": "conv", "k": "$k", "kernel": 3, "name": "body"},
                    {"op": "add", "inputs": ["body", "@prev_in"],
                     "name": "out"},
                ],
            },
            "layers": [
                {"op": "conv", "k": 8, "kernel": 1, "name": "stem"},
                {"op": "block", "block": "residual", "name": "r1",
                 "params": {"k": 8}},
            ],
        }
        graph, _ = spec_to_graph(spec)
        assert set(graph.predecessors("r1_out")) == {"r1_body", "stem"}

    def test_cross_block_skip_by_qualified_name(self):
        spec = {
            "name": "skip",
            "input": {"h": 8, "w": 8, "c": 4},
            "blocks": {
                "one": [{"op": "conv", "k": 4, "kernel": 3, "name": "out"}],
            },
            "layers": [
                {"op": "block", "block": "one", "name": "e1"},
                {"op": "block", "block": "one", "name": "e2"},
                {"op": "concat", "inputs": ["e1_out", "e2_out"],
                 "name": "cat"},
            ],
        }
        graph, _ = spec_to_graph(spec)
        assert graph.layer("cat").out_k == 8
        assert graph.combine_mode("cat") == "concat"

    def test_unknown_block_raises(self):
        spec = small_spec()
        spec["layers"].append({"op": "block", "block": "nope"})
        with pytest.raises(SpecError):
            parse_spec(spec)


class TestSpecFiles:
    def test_json_file_roundtrip(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(small_spec()))
        graph, _ = import_spec(path)
        assert len(graph) == 3

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "m.yaml"
        path.write_text(yaml.safe_dump(small_spec()))
        graph, _ = import_spec(path)
        assert len(graph) == 3

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{not json")
        with pytest.raises(SpecError):
            load_spec(path)

    def test_bad_yaml_raises_spec_error(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "m.yaml"
        path.write_text("layers: [{op: conv,")
        with pytest.raises(SpecError, match="invalid YAML"):
            load_spec(path)


class TestSpecZoo:
    """The four shipped spec models (acceptance: new scenarios)."""

    @pytest.mark.parametrize("fname,min_layers", [
        ("bert_base.json", 150),
        ("mobilenet_v2.json", 60),
        ("unet.json", 25),
        ("gpt_decode.json", 55),
    ])
    def test_builds_and_validates(self, fname, min_layers):
        graph, report = import_spec(SPEC_DIR / fname)
        graph.validate()
        assert len(graph) >= min_layers
        # Shipped specs must lower exactly: no approximated ops.
        assert report.is_exact

    def test_mobilenet_exercises_dwconv(self):
        graph, _ = import_spec(SPEC_DIR / "mobilenet_v2.json")
        kinds = {l.kind for l in graph.layers()}
        assert LayerType.DWCONV in kinds
        dw = graph.layer("s3a_dw")
        assert dw.groups == dw.in_c == dw.out_k

    def test_bert_attention_shapes(self):
        graph, _ = import_spec(SPEC_DIR / "bert_base.json")
        qk = graph.layer("l0_qk")
        assert qk.kind is LayerType.MATMUL
        assert (qk.out_h, qk.out_k, qk.in_c) == (128, 128, 768)
        ctx = graph.layer("l0_ctx")
        assert (ctx.out_h, ctx.out_k, ctx.in_c) == (128, 768, 128)

    def test_gpt_decode_kv_cache_shapes(self):
        graph, _ = import_spec(SPEC_DIR / "gpt_decode.json")
        qk = graph.layer("l0_qk")
        # One query token against a 1024-entry KV cache.
        assert (qk.out_h, qk.out_k, qk.in_c) == (1, 1024, 768)
        kcache = graph.layer("l0_kcache")
        assert kcache.kind is LayerType.VECTOR
        assert kcache.out_h == 1024

    def test_unet_skip_concats(self):
        graph, _ = import_spec(SPEC_DIR / "unet.json")
        cat = graph.layer("cat3")
        assert set(graph.predecessors("cat3")) == {"uc3", "e3_out"}
        assert cat.out_k == 256
        up = graph.layer("u3")
        assert up.kind is LayerType.VECTOR
        assert up.out_h == 32
