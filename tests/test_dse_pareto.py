"""Tests for Pareto-front utilities over DSE results."""

import pytest

from repro.arch import ArchConfig
from repro.cost import DEFAULT_MC
from repro.dse import (
    CandidateResult,
    category_bests,
    dominates,
    pareto_front,
    top_fraction,
)
from repro.units import GB, MB


def make_result(mc_scale, energy, delay, chiplets=1):
    arch = ArchConfig(
        cores_x=4, cores_y=4, xcut=chiplets, ycut=1,
        dram_bw=64 * GB, noc_bw=32 * GB, d2d_bw=16 * GB,
        glb_bytes=int(mc_scale * MB), macs_per_core=1024,
    )
    mc = DEFAULT_MC.evaluate(arch)
    return CandidateResult(
        arch=arch, mc=mc, energy=energy, delay=delay,
        score=mc.total * energy * delay,
    )


class TestDominates:
    def test_strict_domination(self):
        assert dominates((1.0, 1.0), (2.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0))

    def test_tradeoff_points_incomparable(self):
        assert not dominates((1.0, 3.0), (2.0, 2.0))
        assert not dominates((2.0, 2.0), (1.0, 3.0))


class TestParetoFront:
    def test_front_excludes_dominated(self):
        good = make_result(1, energy=1.0, delay=1.0)
        bad = make_result(1, energy=2.0, delay=2.0)
        front = pareto_front([good, bad], axes=("energy", "delay"))
        assert front == [good]

    def test_tradeoffs_all_kept(self):
        a = make_result(1, energy=1.0, delay=3.0)
        b = make_result(1, energy=3.0, delay=1.0)
        front = pareto_front([a, b], axes=("energy", "delay"))
        assert set(id(r) for r in front) == {id(a), id(b)}

    def test_three_axis_front(self):
        rs = [
            make_result(1, 1.0, 3.0),
            make_result(2, 3.0, 1.0),
            make_result(4, 3.0, 3.0),
        ]
        front = pareto_front(rs, axes=("mc", "energy", "delay"))
        assert rs[0] in front and rs[1] in front
        # The third has the worst energy and delay AND the biggest GLB
        # (highest MC), so it is dominated.
        assert rs[2] not in front


class TestTopFraction:
    def test_keeps_best_half(self):
        rs = [make_result(1, float(i), 1.0) for i in range(1, 11)]
        kept = top_fraction(rs, 0.5, axis="energy")
        assert len(kept) == 5
        assert max(r.energy for r in kept) <= 5.0

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            top_fraction([], 0.0)

    def test_always_keeps_one(self):
        rs = [make_result(1, 1.0, 1.0)]
        assert len(top_fraction(rs, 0.01)) == 1


class TestCategoryBests:
    def test_best_per_chiplet_count(self):
        rs = [
            make_result(1, 2.0, 2.0, chiplets=1),
            make_result(1, 1.0, 1.0, chiplets=1),
            make_result(1, 5.0, 5.0, chiplets=2),
        ]
        best = category_bests(rs, category=lambda r: r.arch.n_chiplets,
                              axis="edp")
        assert best[1].energy == 1.0
        assert best[2].energy == 5.0
