"""ResultStore behavior: durability, concurrency, torn-tail tolerance."""

import json

from repro.campaign.store import (
    KIND_CANDIDATE,
    KIND_MAPPING,
    ResultStore,
)


class TestBasicRoundTrip:
    def test_put_get_across_instances(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put(KIND_CANDIDATE, "k1", {"score": 1.5})
        fresh = ResultStore(tmp_path)
        assert fresh.get(KIND_CANDIDATE, "k1") == {"score": 1.5}
        assert fresh.has(KIND_CANDIDATE, "k1")
        assert not fresh.has(KIND_MAPPING, "k1")

    def test_kinds_are_separate_namespaces(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KIND_CANDIDATE, "k", {"a": 1})
        store.put(KIND_MAPPING, "k", {"b": 2})
        assert store.get(KIND_CANDIDATE, "k") == {"a": 1}
        assert store.get(KIND_MAPPING, "k") == {"b": 2}
        assert store.counts() == {KIND_CANDIDATE: 1, KIND_MAPPING: 1}
        assert len(store) == 2

    def test_empty_store(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KIND_CANDIDATE, "nope") is None
        assert store.keys(KIND_CANDIDATE) == set()
        assert store.counts() == {}


class TestConcurrency:
    def test_two_writers_own_segments(self, tmp_path):
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        a.put(KIND_CANDIDATE, "ka", {"v": "a"})
        b.put(KIND_CANDIDATE, "kb", {"v": "b"})
        segs = list((tmp_path / "segments").glob("*.jsonl"))
        assert len(segs) == 2
        merged = ResultStore(tmp_path)
        assert merged.keys(KIND_CANDIDATE) == {"ka", "kb"}

    def test_reload_sees_other_writers(self, tmp_path):
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        b.put(KIND_CANDIDATE, "kb", {"v": 1})
        assert not a.has(KIND_CANDIDATE, "kb")
        a.reload()
        assert a.has(KIND_CANDIDATE, "kb")

    def test_duplicate_appends_are_harmless(self, tmp_path):
        a = ResultStore(tmp_path)
        b = ResultStore(tmp_path)
        a.put(KIND_CANDIDATE, "k", {"v": 1})
        b.put(KIND_CANDIDATE, "k", {"v": 1})
        merged = ResultStore(tmp_path)
        assert merged.get(KIND_CANDIDATE, "k") == {"v": 1}
        assert merged.counts() == {KIND_CANDIDATE: 1}


class TestCrashTolerance:
    def test_torn_tail_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KIND_CANDIDATE, "good", {"v": 1})
        store.close()
        seg = next((tmp_path / "segments").glob("*.jsonl"))
        with open(seg, "a") as f:
            f.write('{"kind": "candidate", "key": "torn", "payl')
        fresh = ResultStore(tmp_path)
        assert fresh.get(KIND_CANDIDATE, "good") == {"v": 1}
        assert not fresh.has(KIND_CANDIDATE, "torn")
        assert fresh.skipped_lines == 1

    def test_appends_survive_without_close(self, tmp_path):
        """No close() (a kill) must not lose acknowledged puts."""
        store = ResultStore(tmp_path)
        store.put(KIND_CANDIDATE, "k", {"v": 1})
        # Deliberately never close.
        fresh = ResultStore(tmp_path)
        assert fresh.get(KIND_CANDIDATE, "k") == {"v": 1}


class TestFailures:
    def test_failure_then_success_supersedes(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record_failure(KIND_CANDIDATE, "k", "boom")
        assert store.failed_keys(KIND_CANDIDATE) == {"k"}
        store.put(KIND_CANDIDATE, "k", {"v": 1})
        assert store.failed_keys(KIND_CANDIDATE) == set()

    def test_failures_scoped_by_kind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record_failure(KIND_MAPPING, "k", "boom")
        assert store.failed_keys(KIND_CANDIDATE) == set()
        assert store.failed_keys(KIND_MAPPING) == {"k"}


class TestIndex:
    def test_index_written_and_parseable(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put(KIND_CANDIDATE, "k", {"v": 1})
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["counts"] == {KIND_CANDIDATE: 1}
        assert "k" in index["keys"][KIND_CANDIDATE]

    def test_index_is_derived_not_authoritative(self, tmp_path):
        """Deleting the index loses nothing — segments are the truth."""
        with ResultStore(tmp_path) as store:
            store.put(KIND_CANDIDATE, "k", {"v": 1})
        (tmp_path / "index.json").unlink()
        fresh = ResultStore(tmp_path)
        assert fresh.get(KIND_CANDIDATE, "k") == {"v": 1}
