"""Unit tests for the Layer model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidWorkloadError
from repro.workloads.layer import Layer, LayerType


def make_conv(**kw):
    defaults = dict(
        name="c",
        kind=LayerType.CONV,
        out_h=56,
        out_w=56,
        out_k=64,
        in_c=64,
        kernel_r=3,
        kernel_s=3,
        stride=1,
        pad_h=1,
        pad_w=1,
    )
    defaults.update(kw)
    return Layer(**defaults)


class TestGeometry:
    def test_same_padding_preserves_size(self):
        layer = make_conv()
        assert layer.in_h == 56
        assert layer.in_w == 56

    def test_strided_conv_input_size(self):
        layer = make_conv(out_h=112, out_w=112, kernel_r=7, kernel_s=7,
                          stride=2, pad_h=3, pad_w=3, in_c=3)
        assert layer.in_h == (112 - 1) * 2 + 7 - 6  # 223 -> padded to 224+pad
        assert layer.in_h == 223

    def test_asymmetric_kernel(self):
        layer = make_conv(kernel_r=1, kernel_s=7, pad_h=0, pad_w=3)
        assert layer.in_h == 56
        assert layer.in_w == 56

    def test_fc_geometry(self):
        layer = Layer("fc", LayerType.FC, out_h=1, out_w=1, out_k=1000, in_c=2048)
        assert layer.in_h == 1
        assert layer.in_w == 1


class TestVolumes:
    def test_conv_macs(self):
        layer = make_conv()
        assert layer.macs(1) == 56 * 56 * 64 * 64 * 9

    def test_macs_scale_with_batch(self):
        layer = make_conv()
        assert layer.macs(8) == 8 * layer.macs(1)

    def test_grouped_conv_macs(self):
        dense = make_conv()
        grouped = make_conv(groups=32)
        assert grouped.macs(1) == dense.macs(1) // 32

    def test_dwconv_weights(self):
        layer = make_conv(kind=LayerType.DWCONV, groups=64)
        assert layer.weight_elems() == 64 * 1 * 9

    def test_pool_has_no_weights(self):
        layer = make_conv(kind=LayerType.POOL)
        assert layer.weight_elems() == 0
        assert not layer.has_weights

    def test_eltwise_macs_is_elementcount(self):
        layer = Layer("e", LayerType.ELTWISE, out_h=7, out_w=7, out_k=512, in_c=512)
        assert layer.macs(1) == 7 * 7 * 512

    def test_matmul_macs(self):
        layer = Layer("m", LayerType.MATMUL, out_h=64, out_w=1, out_k=64, in_c=512)
        assert layer.macs(1) == 64 * 64 * 512

    def test_ofmap_bytes_uses_precision(self):
        l8 = make_conv(bits=8)
        l16 = make_conv(bits=16)
        assert l16.ofmap_bytes(1) == 2 * l8.ofmap_bytes(1)


class TestValidation:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(InvalidWorkloadError):
            make_conv(out_h=0)

    def test_rejects_negative_padding(self):
        with pytest.raises(InvalidWorkloadError):
            make_conv(pad_h=-1)

    def test_rejects_bad_groups(self):
        with pytest.raises(InvalidWorkloadError):
            make_conv(groups=7)

    def test_rejects_non_byte_bits(self):
        with pytest.raises(InvalidWorkloadError):
            make_conv(bits=12)


class TestChannelwise:
    @pytest.mark.parametrize("kind", [LayerType.POOL, LayerType.ELTWISE,
                                      LayerType.VECTOR])
    def test_channelwise_kinds(self, kind):
        layer = Layer("x", kind, out_h=4, out_w=4, out_k=8, in_c=8,
                      kernel_r=1, kernel_s=1)
        assert layer.is_channelwise

    def test_conv_not_channelwise(self):
        assert not make_conv().is_channelwise


@given(
    h=st.integers(1, 64),
    w=st.integers(1, 64),
    k=st.integers(1, 256),
    c=st.integers(1, 256),
    batch=st.integers(1, 16),
)
def test_volume_identities(h, w, k, c, batch):
    layer = Layer("p", LayerType.CONV, out_h=h, out_w=w, out_k=k, in_c=c)
    assert layer.ofmap_elems(batch) == batch * h * w * k
    assert layer.weight_elems() == k * c
    assert layer.macs(batch) == layer.ofmap_elems(batch) * c
