"""Unit tests for LMS parsing (Fig 3) and receptive-field arithmetic."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core.encoding import (
    IMPLICIT,
    FlowOfData,
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    Partition,
)
from repro.core.parser import (
    Region,
    parse_lms,
    parse_scheme,
    required_channels,
    required_input_box,
)
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def conv_layer(**kw):
    defaults = dict(
        name="L", kind=LayerType.CONV, out_h=8, out_w=8, out_k=16, in_c=4,
        kernel_r=3, kernel_s=3, stride=1, pad_h=1, pad_w=1,
    )
    defaults.update(kw)
    return Layer(**defaults)


class TestRegion:
    def test_volume(self):
        r = Region(0, 2, 0, 3, 0, 1, 0, 4)
        assert r.volume() == 2 * 3 * 1 * 4

    def test_intersection(self):
        a = Region(0, 4, 0, 4, 0, 1, 0, 8)
        b = Region(2, 6, 1, 3, 0, 1, 4, 12)
        assert a.intersection_volume(b) == 2 * 2 * 1 * 4

    def test_disjoint_intersection_zero(self):
        a = Region(0, 2, 0, 2, 0, 1, 0, 4)
        b = Region(2, 4, 0, 2, 0, 1, 0, 4)
        assert a.intersection_volume(b) == 0


class TestParseScheme:
    def test_parts_tile_the_ofmap(self):
        layer = conv_layer()
        scheme = MappingScheme(
            Partition(2, 2, 1, 2), tuple(range(8)), FlowOfData(0, 0, 0)
        )
        parts = parse_scheme(layer, scheme, batch_unit=1)
        assert len(parts) == 8
        total = sum(p.region.volume() for p in parts)
        assert total == layer.ofmap_elems(1)
        # Pairwise disjoint.
        for a, b in itertools.combinations(parts, 2):
            assert a.region.intersection_volume(b.region) == 0

    def test_each_part_on_distinct_core(self):
        layer = conv_layer()
        scheme = MappingScheme(
            Partition(1, 1, 1, 4), (5, 2, 7, 0), FlowOfData(0, 0, 0)
        )
        parts = parse_scheme(layer, scheme, batch_unit=1)
        assert [p.core for p in parts] == [5, 2, 7, 0]

    def test_workload_matches_region(self):
        layer = conv_layer(out_k=16, in_c=4)
        scheme = MappingScheme(
            Partition(2, 1, 1, 2), (0, 1, 2, 3), FlowOfData(0, 0, 0)
        )
        parts = parse_scheme(layer, scheme, batch_unit=1)
        wl = parts[0].workload
        assert wl.h == 4 and wl.k == 8
        assert wl.c == 4  # conv needs all input channels

    def test_channelwise_workload_reads_own_slice(self):
        layer = Layer("p", LayerType.POOL, out_h=8, out_w=8, out_k=16,
                      in_c=16, kernel_r=2, kernel_s=2, stride=2)
        scheme = MappingScheme(
            Partition(1, 1, 1, 4), (0, 1, 2, 3), FlowOfData(IMPLICIT, IMPLICIT, 0)
        )
        parts = parse_scheme(layer, scheme, batch_unit=1)
        assert parts[0].workload.c == 4

    def test_grouped_conv_channel_slice(self):
        layer = conv_layer(out_k=32, in_c=32, groups=4)
        scheme = MappingScheme(
            Partition(1, 1, 1, 4), (0, 1, 2, 3), FlowOfData(0, 0, 0)
        )
        parts = parse_scheme(layer, scheme, batch_unit=1)
        # Each part covers exactly one group: 8 input channels.
        assert parts[0].workload.c == 8
        assert parts[0].workload.groups == 1

    def test_macs_conserved_under_k_partition(self):
        layer = conv_layer()
        whole = MappingScheme(Partition(1, 1, 1, 1), (0,), FlowOfData(0, 0, 0))
        split = MappingScheme(
            Partition(1, 1, 1, 4), (0, 1, 2, 3), FlowOfData(0, 0, 0)
        )
        m_whole = sum(
            p.workload.macs() for p in parse_scheme(layer, whole, 1)
        )
        m_split = sum(
            p.workload.macs() for p in parse_scheme(layer, split, 1)
        )
        assert m_whole == m_split


class TestReceptiveField:
    def test_same_conv_interior(self):
        layer = conv_layer()
        region = Region(2, 4, 2, 4, 0, 1, 0, 16)
        ih_lo, ih_hi, iw_lo, iw_hi = required_input_box(layer, region)
        assert (ih_lo, ih_hi) == (1, 5)  # 2*1-1 .. 3*1-1+3
        assert (iw_lo, iw_hi) == (1, 5)

    def test_edge_clipping(self):
        layer = conv_layer()
        region = Region(0, 2, 0, 2, 0, 1, 0, 16)
        ih_lo, ih_hi, _, _ = required_input_box(layer, region)
        assert ih_lo == 0  # padding clipped away

    def test_strided(self):
        layer = conv_layer(out_h=4, out_w=4, stride=2, pad_h=0, pad_w=0)
        region = Region(1, 2, 0, 4, 0, 1, 0, 16)
        ih_lo, ih_hi, _, _ = required_input_box(layer, region)
        assert (ih_lo, ih_hi) == (2, 5)

    def test_channels_conv_needs_all(self):
        layer = conv_layer()
        region = Region(0, 4, 0, 4, 0, 1, 0, 8)
        assert required_channels(layer, region) == (0, 4)

    def test_channels_pool_needs_slice(self):
        layer = Layer("p", LayerType.POOL, out_h=8, out_w=8, out_k=16,
                      in_c=16, kernel_r=2, kernel_s=2, stride=2)
        region = Region(0, 8, 0, 8, 0, 1, 4, 8)
        assert required_channels(layer, region) == (4, 8)

    def test_channels_grouped(self):
        layer = conv_layer(out_k=32, in_c=32, groups=4)
        region = Region(0, 8, 0, 8, 0, 1, 8, 16)  # group 1 exactly
        assert required_channels(layer, region) == (8, 16)


@settings(max_examples=40, deadline=None)
@given(
    ph=st.integers(1, 4), pw=st.integers(1, 4),
    pb=st.integers(1, 2), pk=st.integers(1, 4),
)
def test_parse_tiles_exactly(ph, pw, pb, pk):
    """Any feasible partition tiles the ofmap cube exactly."""
    layer = conv_layer(out_h=8, out_w=8, out_k=16)
    n = ph * pw * pb * pk
    scheme = MappingScheme(
        Partition(ph, pw, pb, pk), tuple(range(n)), FlowOfData(0, 0, 0)
    )
    parts = parse_scheme(layer, scheme, batch_unit=2)
    volumes = sum(p.region.volume() for p in parts)
    assert volumes == layer.ofmap_elems(2)
    assert len({p.core for p in parts}) == n


def test_parse_lms_whole_group():
    g = DNNGraph("g")
    g.add_layer(conv_layer(name="a", out_k=8, in_c=3))
    g.add_layer(conv_layer(name="b", out_k=4, in_c=8), inputs=["a"])
    group = LayerGroup(("a", "b"), batch_unit=1)
    lms = LayerGroupMapping(group, {
        "a": MappingScheme(Partition(1, 1, 1, 2), (0, 1),
                           FlowOfData(0, 0, IMPLICIT)),
        "b": MappingScheme(Partition(2, 1, 1, 1), (2, 3),
                           FlowOfData(IMPLICIT, 0, 0)),
    })
    parsed = parse_lms(g, lms)
    assert set(parsed.layers) == {"a", "b"}
    assert len(parsed.layer("a").parts) == 2
