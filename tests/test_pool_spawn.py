"""PersistentEvalPool under the spawn start method (no fork anywhere).

ISSUE 10's acceptance criterion: the pool's table handoff must not
depend on fork inheritance.  Compiled graph tables travel through
``multiprocessing.shared_memory`` arenas (published once, attached
zero-copy by every worker), the explorer and any armed chaos hook ride
the spawn initializer, and the reuse / fault-recovery behavior pinned
for fork pools holds identically.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.campaign import CampaignRunner, RetryPolicy
from repro.compiled import compile_graph
from repro.compiled.graph import TABLE_KEYS, CompiledGraph
from repro.compiled.shm import (
    ShmArena,
    adopt_shared_tables,
    publish_graph_tables,
)
from repro.core.sa import SASettings
from repro.dse import DesignSpaceExplorer, Workload
from repro.perf import PERF
from repro.testing import parse_chaos

from test_campaign_faults import (
    N,
    events_named,
    make_spec,
    small_candidates,
    tiny_graph,
)


@pytest.fixture
def spawn_method():
    """Force the spawn start method for one test, then restore."""
    old = mp.get_start_method(allow_none=True)
    mp.set_start_method("spawn", force=True)
    try:
        yield
    finally:
        mp.set_start_method(old or "fork", force=True)


class TestShmArena:
    def test_publish_attach_roundtrip_zero_copy(self):
        compiled = compile_graph(tiny_graph())
        arena = publish_graph_tables(compiled)
        try:
            peer = ShmArena.attach(arena.handle)
            views = peer.views()
            for key in TABLE_KEYS:
                np.testing.assert_array_equal(
                    views[key], getattr(compiled, key)
                )
                assert not views[key].flags.writeable
            peer.close()
        finally:
            arena.release()

    def test_refcount_unlinks_only_on_last_release(self):
        compiled = compile_graph(tiny_graph(4))
        arena = publish_graph_tables(compiled)
        again = publish_graph_tables(compiled)
        assert again is arena and arena.refs == 2
        arena.release()
        # Still published: a fresh attach succeeds.
        ShmArena.attach(arena.handle).close()
        arena.release()
        assert arena.released
        with pytest.raises(FileNotFoundError):
            ShmArena.attach(arena.handle)

    def test_adopted_graph_reuses_views_and_seeds_memo(self):
        graph = tiny_graph()
        arena = publish_graph_tables(compile_graph(graph))
        try:
            clone = tiny_graph()
            compiled = adopt_shared_tables(clone, arena.handle)
            assert compile_graph(clone) is compiled
            for key in TABLE_KEYS:
                np.testing.assert_array_equal(
                    getattr(compiled, key),
                    getattr(compile_graph(graph), key),
                )
        finally:
            arena.release()

    def test_mismatched_tables_rejected(self):
        arena = publish_graph_tables(compile_graph(tiny_graph(3)))
        try:
            with pytest.raises(ValueError, match="shared table"):
                CompiledGraph(
                    tiny_graph(5),
                    tables=ShmArena.attach(arena.handle).views(),
                )
        finally:
            arena.release()


class TestSpawnPool:
    def test_pool_reuse_and_identical_results(self, spawn_method):
        candidates = small_candidates()
        with DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=6, seed=11),
            record_mappings=False,
        ) as ex:
            serial = ex.explore(candidates)  # in-process reference
            PERF.reset()
            par1 = ex.explore(candidates, workers=2)
            par2 = ex.explore(candidates, workers=2)
            assert ex._pool.start_method == "spawn"
            assert PERF.get("dse.pool.created") == 1
            arenas = ex._pool._arenas
            assert len(arenas) == 1 and not arenas[0].released
        # Worker results match the in-process evaluation exactly, and
        # closing the pool released the published segment.
        for rep in (par1, par2):
            assert [r.score for r in rep.results] == \
                [r.score for r in serial.results]
        assert arenas == [] or all(a.released for a in arenas)

    def test_crash_recovery_under_spawn(self, spawn_method, tmp_path):
        PERF.reset()
        plan = parse_chaos("crash:1")  # SIGKILL candidate 1's 1st attempt
        with CampaignRunner(make_spec(), tmp_path / "faulty") as runner:
            report = runner.run(
                workers=2, policy=RetryPolicy(max_attempts=3), chaos=plan,
            )
        assert report.evaluated == N
        assert report.failed == 0
        assert report.quarantined == 0
        assert PERF.get("dse.pool.worker_deaths") >= 1
        assert events_named(tmp_path / "faulty", "camp", "pool_respawned")
