"""Cross-module integration tests: full pipelines and invariants."""

import pytest

from repro.arch import (
    FoldedTorusTopology,
    g_arch,
    s_arch,
)
from repro.baselines import tangram_map
from repro.core import (
    MappingEngine,
    MappingEngineSettings,
    SASettings,
    validate_lms,
)
from repro.cost import DEFAULT_MC
from repro.evalmodel import Evaluator
from repro.io import load_mapping, save_mapping
from repro.workloads.models import MODEL_REGISTRY, build


def small_engine(arch, iterations=0, **kw):
    return MappingEngine(
        arch,
        settings=MappingEngineSettings(
            sa=SASettings(iterations=iterations), **kw
        ),
    )


class TestFullPipelinePerModel:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_every_model_maps_on_g_arch(self, name):
        graph = build(name)
        result = small_engine(g_arch()).map(graph, batch=2)
        assert result.delay > 0
        assert result.energy > 0
        for lms in result.lmss:
            validate_lms(graph, lms, 36, 5)

    def test_layers_covered_exactly_once(self):
        graph = build("GN")
        result = small_engine(g_arch()).map(graph, batch=2)
        mapped = [n for lms in result.lmss for n in lms.group.layers]
        assert sorted(mapped) == sorted(graph.layer_names())


class TestDeterminism:
    def test_same_seed_same_result(self):
        graph = build("TF")
        a = small_engine(g_arch(), iterations=60).map(graph, batch=8)
        b = small_engine(g_arch(), iterations=60).map(graph, batch=8)
        assert a.delay == pytest.approx(b.delay)
        assert a.energy == pytest.approx(b.energy)

    def test_reeval_of_saved_mapping_matches(self, tmp_path):
        graph = build("TF")
        arch = g_arch()
        result = small_engine(arch, iterations=40).map(graph, batch=8)
        path = tmp_path / "m.json"
        save_mapping(result.lmss, path)
        loaded = load_mapping(path)
        re_eval = Evaluator(arch).evaluate_mapping(graph, loaded, batch=8)
        assert re_eval.delay == pytest.approx(result.delay)
        assert re_eval.energy.total == pytest.approx(result.energy)


class TestRestarts:
    def test_restarts_never_hurt(self):
        graph = build("TF")
        one = small_engine(g_arch(), iterations=40).map(graph, batch=8)
        multi = small_engine(
            g_arch(), iterations=40, restarts=3
        ).map(graph, batch=8)
        # Multi-restart includes the single run's seed, so it can only
        # match or beat it on the SA's own cost surface.
        assert multi.edp <= one.edp * 1.01


class TestTopologyGenerality:
    def test_engine_runs_on_folded_torus(self):
        graph = build("TF")
        arch = g_arch()
        mesh = small_engine(arch).map(graph, batch=4)
        torus_engine = MappingEngine(
            arch,
            topo=FoldedTorusTopology(arch),
            settings=MappingEngineSettings(sa=SASettings(iterations=0)),
        )
        torus = torus_engine.map(graph, batch=4)
        # Wraparound shortcuts can only reduce hop distances, so network
        # energy under the same scheme family cannot explode.
        assert torus.delay > 0
        assert torus.evaluation.energy.network <= \
            mesh.evaluation.energy.network * 1.5


class TestBaselineRelationships:
    def test_tangram_equals_engine_without_sa(self):
        graph = build("TF")
        arch = s_arch()
        a = tangram_map(graph, arch, batch=4)
        b = small_engine(arch, iterations=0).map(graph, batch=4)
        assert a.delay == pytest.approx(b.delay)
        assert a.energy == pytest.approx(b.energy)

    def test_mc_is_mapping_independent(self):
        arch = g_arch()
        mc1 = DEFAULT_MC.evaluate(arch)
        _ = small_engine(arch, iterations=20).map(build("TF"), batch=4)
        mc2 = DEFAULT_MC.evaluate(arch)
        assert mc1 == mc2


class TestBatchScaling:
    def test_throughput_mode_amortizes_fill_drain(self):
        """Per-sample delay at batch 64 is below per-sample at batch 1."""
        graph = build("TF")
        arch = g_arch()
        b1 = small_engine(arch, iterations=0).map(graph, batch=1)
        b64 = small_engine(arch, iterations=0).map(graph, batch=64)
        assert b64.delay / 64 < b1.delay

    def test_energy_roughly_linear_in_batch(self):
        """Once the graph partition stabilizes (same groups at batch 16
        and 32), doubling the batch roughly doubles energy; at small
        batches the DP re-partitions and weight amortization makes
        energy sub-linear."""
        graph = build("TF")
        arch = g_arch()
        e16 = small_engine(arch, iterations=0).map(graph, batch=16).energy
        e32 = small_engine(arch, iterations=0).map(graph, batch=32).energy
        assert 1.5 < e32 / e16 < 2.5
