"""Bit-identity of the array-native evaluation core.

The compiled path (``repro.compiled``) must reproduce the object path's
results *exactly* — same floats, bit for bit — across the whole model
registry, for delta evaluation under every SA operator, and through
whole annealing trajectories.  These tests are the contract that lets
the Evaluator default to the compiled path.
"""

import random

import pytest

from repro.arch import ArchConfig, g_arch, s_arch
from repro.core import SAController, SASettings
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.operators import OPERATORS, op5_change_flow
from repro.evalmodel import Evaluator
from repro.units import GB, MB
from repro.workloads.models import MODEL_REGISTRY, build


def assert_group_evals_equal(a, b, context=""):
    assert a.delay == b.delay, context
    assert a.energy.intra == b.energy.intra, context
    assert a.energy.noc == b.energy.noc, context
    assert a.energy.d2d == b.energy.d2d, context
    assert a.energy.dram == b.energy.dram, context
    assert a.stage_time == b.stage_time, context
    assert a.rounds == b.rounds, context
    assert a.compute_time == b.compute_time, context
    assert a.network_time == b.network_time, context
    assert a.dram_time == b.dram_time, context
    assert tuple(a.dram_round_bytes) == tuple(b.dram_round_bytes), context
    assert a.fits == b.fits, context


def small_arch():
    return ArchConfig(
        cores_x=4, cores_y=4, xcut=2, ycut=1, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB,
        macs_per_core=1024,
    )


class TestModelZooIdentity:
    """Compiled vs object path over every registered model."""

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_initial_mapping_bit_identical(self, name):
        graph = build(name)
        arch = s_arch()
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        compiled_ev = Evaluator(arch, cache=True)
        object_ev = Evaluator(arch, cache=False)
        assert compiled_ev.compiled_for(graph) is not None
        assert object_ev.compiled_for(graph) is None
        stored = {}
        for lms in lmss:
            a = compiled_ev.evaluate_group(graph, lms, 4, stored)
            b = object_ev.evaluate_group(graph, lms, 4, stored)
            assert_group_evals_equal(a, b, f"{name}:{lms.group.layers[0]}")
            for lname in lms.group.layers:
                of = lms.scheme(lname).fd.ofmap
                if of >= 0:
                    stored[lname] = of
        # Whole-mapping chaining agrees too.
        ma = compiled_ev.evaluate_mapping(graph, lmss, 4)
        mb = object_ev.evaluate_mapping(graph, lmss, 4)
        assert ma.delay == mb.delay, name
        assert ma.energy.total == mb.energy.total, name

    def test_annealed_states_bit_identical(self):
        """After a real SA shuffle the two paths still agree exactly."""
        graph = build("GN")
        arch = g_arch()
        groups = partition_graph(graph, arch, batch=8)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        ctl = SAController(
            graph, Evaluator(arch), lmss, 8,
            SASettings(iterations=80, seed=11),
        )
        annealed = ctl.run()
        compiled_ev = Evaluator(arch, cache=True)
        object_ev = Evaluator(arch, cache=False)
        stored = {}
        for lms in annealed:
            a = compiled_ev.evaluate_group(graph, lms, 8, stored)
            b = object_ev.evaluate_group(graph, lms, 8, stored)
            assert_group_evals_equal(a, b)
            for lname in lms.group.layers:
                of = lms.scheme(lname).fd.ofmap
                if of >= 0:
                    stored[lname] = of


class TestDeltaEvaluation:
    """Session delta evaluation vs full re-evaluation, per operator."""

    @pytest.fixture(scope="class")
    def setup(self):
        graph = build("TF")
        arch = g_arch()
        groups = partition_graph(graph, arch, batch=8)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        lms = max(lmss, key=lambda m: len(m.group))
        return graph, arch, lms

    @pytest.mark.parametrize("op_name,op", OPERATORS, ids=[n for n, _ in OPERATORS])
    def test_operator_delta_matches_full(self, setup, op_name, op):
        graph, arch, lms = setup
        ev = Evaluator(arch)
        reference = Evaluator(arch, cache=False)
        ce = ev.compiled_for(graph)
        session = ce.session(lms, 8, {})
        rng = random.Random(42)
        current = lms
        checked = 0
        for _ in range(40):
            if op is op5_change_flow:
                candidate = op(graph, current, rng, n_dram=arch.n_dram)
            else:
                candidate = op(graph, current, rng)
            if candidate is None:
                continue
            proposal = session.propose(candidate, {})
            full = reference.evaluate_group(graph, candidate, 8, {})
            assert_group_evals_equal(proposal.result, full, op_name)
            checked += 1
            # Commit every other accepted move so deltas also run
            # against evolved (non-initial) session states.
            if checked % 2 == 0:
                session.commit(proposal)
                current = candidate
            if checked >= 12:
                break
        assert checked >= 3, f"{op_name} never produced a candidate"

    def test_stored_at_change_invalidates_placement(self):
        """A cross-group placement change re-evaluates the ext slice."""
        graph = build("RN-50")
        arch = g_arch()
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        assert len(lmss) >= 2, "test needs a multi-group partition"
        ev = Evaluator(arch)
        reference = Evaluator(arch, cache=False)
        ce = ev.compiled_for(graph)
        # The second group reads the first group's outputs.
        first, second = lmss[0], lmss[1]
        stored = {}
        for lname in first.group.layers:
            of = first.scheme(lname).fd.ofmap
            if of >= 0:
                stored[lname] = of
        session = ce.session(second, 4, stored)
        base = session.propose(second, stored)
        assert_group_evals_equal(
            base.result, reference.evaluate_group(graph, second, 4, stored)
        )
        # Move every stored producer to explicit DRAM 1 and re-propose
        # the *same* mapping: only the placements changed.
        moved = {name: 1 for name in stored}
        shifted = session.propose(second, moved)
        assert_group_evals_equal(
            shifted.result,
            reference.evaluate_group(graph, second, 4, moved),
        )
        assert shifted.result.delay != base.result.delay or \
            shifted.result.energy.total != base.result.energy.total


class TestBatchedSA:
    """`SASettings.proposal_batch` semantics."""

    def run_once(self, batch_k, seed=9, iterations=60):
        graph = build("GN")
        arch = small_arch()
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        ctl = SAController(
            graph, Evaluator(arch), list(lmss), 4,
            SASettings(iterations=iterations, seed=seed,
                       proposal_batch=batch_k),
        )
        ctl.run()
        return ctl

    def test_batched_deterministic_for_fixed_seed(self):
        a = self.run_once(4)
        b = self.run_once(4)
        assert a.best_costs == b.best_costs
        assert a.stats.final_cost == b.stats.final_cost
        assert a.stats.accepted == b.stats.accepted
        assert a.stats.proposed == b.stats.proposed
        assert a.stats.operator_uses == b.stats.operator_uses

    def test_batch_scores_k_proposals_per_iteration(self):
        k = self.run_once(4)
        single = self.run_once(1)
        assert k.stats.proposed > single.stats.proposed
        assert k.stats.iterations == single.stats.iterations

    def test_batched_works_on_object_path_too(self):
        """proposal_batch must not require the compiled evaluator."""
        graph = build("GN")
        arch = small_arch()
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        ctl = SAController(
            graph, Evaluator(arch, cache=False), list(lmss), 4,
            SASettings(iterations=20, seed=9, proposal_batch=3),
        )
        ctl.run()
        assert ctl.stats.proposed >= ctl.stats.iterations


class TestWarmGuard:
    """Evaluator.warm runs once per evaluator / (evaluator, graph)."""

    def test_route_warming_runs_once(self):
        from repro.perf import PERF

        ev = Evaluator(small_arch())
        assert not ev._routes_warmed
        ev.warm()
        assert ev._routes_warmed
        before = PERF.get("evaluator.warm.skipped")
        ev.warm()
        ev.warm()
        assert PERF.get("evaluator.warm.skipped") == before + 2

    def test_graph_compiled_once_per_evaluator_graph(self):
        graph = build("GN")
        ev = Evaluator(small_arch())
        ev.warm(graph)
        ce = ev.compiled_for(graph)
        ev.warm(graph)  # the restart / warm-start second call
        assert ev.compiled_for(graph) is ce

    def test_compiled_tables_shared_across_evaluators(self):
        """compile_graph memoizes per graph, not per evaluator."""
        from repro.compiled import compile_graph

        graph = build("GN")
        a = Evaluator(small_arch())
        b = Evaluator(small_arch())
        a.warm(graph)
        b.warm(graph)
        assert a.compiled_for(graph) is not b.compiled_for(graph)
        assert a.compiled_for(graph).cgraph is compile_graph(graph)

    def test_sa_controller_warms_through_restarts(self):
        """MappingEngine restarts reuse the same evaluator warm state."""
        from repro.core.engine import MappingEngine, MappingEngineSettings

        graph = build("GN")
        engine = MappingEngine(
            small_arch(),
            settings=MappingEngineSettings(
                sa=SASettings(iterations=5, seed=0), restarts=2,
            ),
        )
        result = engine.map(graph, 2)
        assert result.sa_stats is not None
        assert engine.evaluator._routes_warmed
