"""``run_sweep(resume=True)``: the store-backed incremental sweep."""

import pytest

from repro.frontend import Scenario, run_sweep
from repro.io.serialization import save_graph
from repro.perf import PERF
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


@pytest.fixture()
def model_path(tmp_path):
    g = DNNGraph("tiny")
    prev = None
    for i in range(3):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    path = tmp_path / "tiny.json"
    save_graph(g, path)
    return str(path)


def scen(model_path, name, batch=1, iters=4):
    return Scenario(name=name, model=model_path, batch=batch, iters=iters)


class TestSweepResume:
    def test_rerun_is_fully_served_from_store(self, tmp_path, model_path):
        out = tmp_path / "sweep"
        scenarios = [scen(model_path, "a", 1), scen(model_path, "b", 2)]
        PERF.reset()
        first = run_sweep(scenarios, out_dir=out, resume=True)
        assert PERF.get("sweep.evaluated") == 2
        assert PERF.get("sweep.store_hits") == 0
        csv_first = (out / "sweep.csv").read_bytes()

        PERF.reset()
        second = run_sweep(scenarios, out_dir=out, resume=True)
        assert PERF.get("sweep.evaluated") == 0
        assert PERF.get("sweep.store_hits") == 2
        assert (out / "sweep.csv").read_bytes() == csv_first
        assert [s["delay_s"] for s in first] == [
            s["delay_s"] for s in second
        ]

    def test_added_scenario_only_evaluates_the_new_one(
        self, tmp_path, model_path
    ):
        out = tmp_path / "sweep"
        scenarios = [scen(model_path, "a", 1), scen(model_path, "b", 2)]
        run_sweep(scenarios, out_dir=out, resume=True)
        PERF.reset()
        extended = scenarios + [scen(model_path, "c", 4)]
        summaries = run_sweep(extended, out_dir=out, resume=True)
        assert PERF.get("sweep.evaluated") == 1
        assert PERF.get("sweep.store_hits") == 2
        assert [s["name"] for s in summaries] == ["a", "b", "c"]

    def test_scenario_name_is_cosmetic(self, tmp_path, model_path):
        out = tmp_path / "sweep"
        run_sweep([scen(model_path, "old-name", 1)], out_dir=out, resume=True)
        PERF.reset()
        summaries = run_sweep(
            [scen(model_path, "new-name", 1)], out_dir=out, resume=True
        )
        assert PERF.get("sweep.store_hits") == 1
        assert PERF.get("sweep.evaluated") == 0
        assert summaries[0]["name"] == "new-name"

    def test_hit_materializes_artifacts_under_new_name(
        self, tmp_path, model_path
    ):
        """A renamed scenario is served from the store but must still
        get its artifact directory (summary.json + mapping.json)."""
        out = tmp_path / "sweep"
        run_sweep([scen(model_path, "old-name", 1)], out_dir=out,
                  resume=True)
        run_sweep([scen(model_path, "new-name", 1)], out_dir=out,
                  resume=True)
        import json

        sc_dir = out / "new-name"
        summary = json.loads((sc_dir / "summary.json").read_text())
        assert summary["name"] == "new-name"
        assert (sc_dir / "mapping.json").exists()
        from repro.io.serialization import load_mapping

        assert load_mapping(sc_dir / "mapping.json")

    def test_interrupted_sweep_keeps_checkpointed_scenarios(
        self, tmp_path, model_path, monkeypatch
    ):
        """A crash mid-sweep must not lose already-evaluated scenarios."""
        import repro.frontend.scenarios as sc_mod

        out = tmp_path / "sweep"
        scenarios = [scen(model_path, "a", 1), scen(model_path, "b", 2)]
        real = sc_mod._run_scenario_full

        def explode_on_b(scenario, out_dir=None):
            if scenario.name == "b":
                raise RuntimeError("killed mid-sweep")
            return real(scenario, out_dir)

        monkeypatch.setattr(sc_mod, "_run_scenario_full", explode_on_b)
        with pytest.raises(RuntimeError):
            run_sweep(scenarios, out_dir=out, resume=True)
        monkeypatch.setattr(sc_mod, "_run_scenario_full", real)

        PERF.reset()
        run_sweep(scenarios, out_dir=out, resume=True)
        assert PERF.get("sweep.store_hits") == 1   # "a" survived the crash
        assert PERF.get("sweep.evaluated") == 1    # only "b" re-runs

    def test_changed_budget_is_a_miss(self, tmp_path, model_path):
        out = tmp_path / "sweep"
        run_sweep([scen(model_path, "a", 1, iters=4)], out_dir=out,
                  resume=True)
        PERF.reset()
        run_sweep([scen(model_path, "a", 1, iters=6)], out_dir=out,
                  resume=True)
        assert PERF.get("sweep.evaluated") == 1

    def test_resume_needs_out_dir(self, model_path):
        with pytest.raises(ValueError):
            run_sweep([scen(model_path, "a")], out_dir=None, resume=True)

    def test_resume_matches_non_resume_results(self, tmp_path, model_path):
        scenarios = [scen(model_path, "a", 1), scen(model_path, "b", 2)]
        plain = run_sweep(scenarios, out_dir=tmp_path / "plain")
        resumed = run_sweep(
            scenarios, out_dir=tmp_path / "resumed", resume=True
        )
        for p, r in zip(plain, resumed):
            assert p["delay_s"] == r["delay_s"]
            assert p["energy_j"] == r["energy_j"]
