"""Tests for the perf subsystem and the evaluation cache layers."""

import pytest

from repro.arch import ArchConfig
from repro.arch.energy import DEFAULT_ENERGY
from repro.core import SAController, SASettings
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.evalmodel import Evaluator
from repro.intracore.cache import IntraCoreEngine
from repro.intracore.dataflow import CoreWorkload
from repro.perf import LruDict, PerfRegistry, emit_bench, read_bench
from repro.units import GB, MB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def chain_graph(n=4):
    g = DNNGraph("chain")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=16, out_w=16, out_k=64,
                  in_c=3 if prev is None else 64, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


def small_arch():
    return ArchConfig(
        cores_x=4, cores_y=4, xcut=2, ycut=1, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB,
        macs_per_core=1024,
    )


class TestPerfRegistry:
    def test_counters_accumulate(self):
        reg = PerfRegistry()
        reg.add("x")
        reg.add("x", 4)
        assert reg.get("x") == 5
        assert reg.get("missing") == 0

    def test_timers_accumulate(self):
        reg = PerfRegistry()
        with reg.time("t"):
            pass
        with reg.time("t"):
            pass
        assert reg.timer_calls("t") == 2
        assert reg.timer_seconds("t") >= 0.0

    def test_hit_rate(self):
        reg = PerfRegistry()
        reg.add("c.hits", 3)
        reg.add("c.misses", 1)
        assert reg.hit_rate("c") == pytest.approx(0.75)
        assert reg.hit_rate("empty") == 0.0

    def test_snapshot_merge_roundtrip(self):
        a, b = PerfRegistry(), PerfRegistry()
        a.add("n", 2)
        with a.time("t"):
            pass
        b.merge(a.snapshot())
        b.merge(a.snapshot())
        assert b.get("n") == 4
        assert b.timer_calls("t") == 2

    def test_rows_and_reset(self):
        reg = PerfRegistry()
        reg.add("n")
        assert reg.rows()
        reg.reset()
        assert not reg.rows()


class TestLruDict:
    def test_evicts_least_recently_used(self):
        d = LruDict(max_entries=2)
        d.put("a", 1)
        d.put("b", 2)
        assert d.get_lru("a") == 1  # refresh "a"
        d.put("c", 3)
        assert "b" not in d
        assert d.get_lru("a") == 1
        assert d.get_lru("c") == 3


class TestBenchEmission:
    def test_emit_and_merge_sections(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        emit_bench("one", {"v": 1}, path)
        emit_bench("two", {"v": 2}, path)
        data = read_bench(path)
        assert data["one"] == {"v": 1}
        assert data["two"] == {"v": 2}
        assert "machine" in data

    def test_read_missing_returns_empty(self, tmp_path):
        assert read_bench(tmp_path / "nope.json") == {}

    def test_write_is_atomic(self, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous JSON intact."""
        import repro.io.atomic as atomic_mod

        path = tmp_path / "BENCH_perf.json"
        emit_bench("one", {"v": 1}, path)

        real_fdopen = atomic_mod.os.fdopen

        class Exploding:
            def __init__(self, f):
                self.f = f

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self.f.close()
                return False

            def write(self, text):
                self.f.write(text[: len(text) // 2])
                raise RuntimeError("killed mid-write")

        monkeypatch.setattr(
            atomic_mod.os, "fdopen",
            lambda fd, mode: Exploding(real_fdopen(fd, mode)),
        )
        with pytest.raises(RuntimeError):
            emit_bench("two", {"v": 2}, path)
        monkeypatch.undo()
        # The original file is whole and parseable; no temp litter
        # (the history sibling from the successful first emit is the
        # only other expected file).
        data = read_bench(path)
        assert data["one"] == {"v": 1}
        assert "two" not in data
        history = tmp_path / "BENCH_history.jsonl"
        assert sorted(tmp_path.iterdir()) == sorted([path, history])

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        for i in range(3):
            emit_bench(f"s{i}", {"v": i}, path)
        history = tmp_path / "BENCH_history.jsonl"
        assert sorted(tmp_path.iterdir()) == sorted([path, history])

    def test_corrupt_file_is_preserved_not_clobbered(self, tmp_path, capsys):
        path = tmp_path / "BENCH_perf.json"
        path.write_text("{not json")
        emit_bench("one", {"v": 1}, path)
        assert read_bench(path)["one"] == {"v": 1}
        preserved = tmp_path / "BENCH_perf.json.corrupt-1"
        assert preserved.read_text() == "{not json"
        err = capsys.readouterr().err
        assert "corrupt" in err and "corrupt-1" in err

        # A second corruption gets its own numbered file.
        path.write_text("also broken")
        emit_bench("two", {"v": 2}, path)
        assert (tmp_path / "BENCH_perf.json.corrupt-2").read_text() == \
            "also broken"
        assert preserved.read_text() == "{not json"

    def test_valid_json_wrong_shape_is_preserved_too(self, tmp_path, capsys):
        path = tmp_path / "BENCH_perf.json"
        path.write_text("[1, 2, 3]")
        emit_bench("one", {"v": 1}, path)
        assert read_bench(path)["one"] == {"v": 1}
        assert (tmp_path / "BENCH_perf.json.corrupt-1").read_text() == \
            "[1, 2, 3]"
        assert "corrupt" in capsys.readouterr().err


class TestIntraCoreLru:
    def wl(self, k):
        return CoreWorkload(kind=LayerType.CONV, b=1, k=k, h=8, w=8, c=16,
                            r=3, s=3)

    def test_lru_eviction_order(self):
        eng = IntraCoreEngine(small_arch(), DEFAULT_ENERGY, max_entries=2)
        eng.schedule(self.wl(8))
        eng.schedule(self.wl(16))
        eng.schedule(self.wl(8))       # refresh k=8
        eng.schedule(self.wl(32))      # evicts k=16, not k=8
        assert eng.evictions == 1
        hits_before = eng.hits
        eng.schedule(self.wl(8))
        assert eng.hits == hits_before + 1
        assert len(eng) == 2

    def test_capacity_bound_holds(self):
        eng = IntraCoreEngine(small_arch(), DEFAULT_ENERGY, max_entries=3)
        for k in (2, 4, 8, 16, 32, 64):
            eng.schedule(self.wl(k))
        assert len(eng) <= 3


class TestEvaluatorCaches:
    def test_cached_equals_uncached_group_evals(self):
        graph = chain_graph()
        arch = small_arch()
        cached = Evaluator(arch, cache=True)
        uncached = Evaluator(arch, cache=False)
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        stored = {}
        for lms in lmss:
            a = cached.evaluate_group(graph, lms, 4, stored)
            again = cached.evaluate_group(graph, lms, 4, stored)
            b = uncached.evaluate_group(graph, lms, 4, stored)
            for ev in (again, b):
                assert ev.delay == a.delay
                assert ev.energy.total == a.energy.total
                assert ev.stage_time == a.stage_time
                assert tuple(ev.dram_round_bytes) == tuple(a.dram_round_bytes)
            for name in lms.group.layers:
                of = lms.scheme(name).fd.ofmap
                if of >= 0:
                    stored[name] = of

    def test_sa_trajectory_identical_cached_vs_uncached(self):
        graph = chain_graph()
        arch = small_arch()
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        runs = []
        for cache in (False, True):
            ev = Evaluator(arch, cache=cache)
            ctl = SAController(
                graph, ev, list(lmss), 4, SASettings(iterations=60, seed=7)
            )
            ctl.run()
            runs.append(ctl)
        assert runs[0].best_costs == runs[1].best_costs
        assert runs[0].stats.accepted == runs[1].stats.accepted
        assert runs[0].stats.final_cost == runs[1].stats.final_cost

    def test_incremental_stored_at_matches_full_rebuild(self):
        graph = chain_graph()
        arch = small_arch()
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        ev = Evaluator(arch)
        ctl = SAController(
            graph, ev, list(lmss), 4, SASettings(iterations=80, seed=1)
        )
        ctl.run()
        assert ctl._stored_at == ctl._stored_at_map(ctl.current)

    def test_stats_throughput_fields(self):
        graph = chain_graph(2)
        arch = small_arch()
        groups = partition_graph(graph, arch, batch=2)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        ctl = SAController(
            graph, Evaluator(arch), list(lmss), 2,
            SASettings(iterations=10, seed=0),
        )
        ctl.run()
        assert ctl.stats.wall_time_s > 0
        assert ctl.stats.iters_per_sec > 0


class TestRoutePrecompute:
    def test_route_tables_match_route(self):
        from repro.arch.topology import MeshTopology

        arch = small_arch()
        topo = MeshTopology(arch)
        table, lens = topo.core_route_table()
        for s in range(arch.n_cores):
            for d in range(arch.n_cores):
                row = s * arch.n_cores + d
                want = topo.route(topo.core_node(s), topo.core_node(d))
                got = tuple(table[row, : lens[row]])
                assert got == want
        to_dram, to_lens, from_dram, from_lens = topo.dram_route_tables()
        n_dram = arch.n_dram
        for c in range(arch.n_cores):
            for d in range(n_dram):
                row = c * n_dram + d
                assert tuple(to_dram[row, : to_lens[row]]) == topo.route(
                    topo.core_node(c), topo.dram_node(d)
                )
                assert tuple(from_dram[row, : from_lens[row]]) == topo.route(
                    topo.dram_node(d), topo.core_node(c)
                )


class TestNamedLruInstrumentation:
    def test_named_dict_tallies_hits_and_misses(self):
        d = LruDict(max_entries=4, name="test.cache")
        d.put("a", 1)
        assert d.get_lru("a") == 1
        assert d.get_lru("b") is None
        assert (d.hits, d.misses) == (1, 1)

    def test_snapshot_folds_named_lru_counters(self):
        reg = PerfRegistry()
        d = LruDict(max_entries=4, name="snaptest")
        d.put("a", 1)
        d.get_lru("a")
        d.get_lru("missing")
        snap = reg.snapshot()
        assert snap["counters"]["lru.snaptest.hits"] >= 1
        assert snap["counters"]["lru.snaptest.misses"] >= 1

    def test_cache_stats_merges_counters_and_live_dicts(self):
        reg = PerfRegistry()
        reg.add("intracore.hits", 3)
        reg.add("intracore.misses", 1)
        d = LruDict(max_entries=4, name="statstest")
        d.put("k", 1)
        d.get_lru("k")
        stats = reg.cache_stats()
        assert stats["intracore"]["hit_rate"] == pytest.approx(0.75)
        assert stats["lru.statstest"]["hits"] >= 1

    def test_reset_zeroes_live_tallies(self):
        from repro.perf import PERF

        d = LruDict(max_entries=4, name="resettest")
        d.put("k", 1)
        d.get_lru("k")
        PERF.reset()
        assert (d.hits, d.misses) == (0, 0)
        # The working set survives; only the tallies restart.
        assert d.get_lru("k") == 1

    def test_add_time_accumulates(self):
        reg = PerfRegistry()
        reg.add_time("sa.delta_eval", 0.5, calls=10)
        reg.add_time("sa.delta_eval", 0.25, calls=5)
        assert reg.timer_seconds("sa.delta_eval") == pytest.approx(0.75)
        assert reg.timer_calls("sa.delta_eval") == 15

    def test_sa_run_reports_delta_eval_timer(self):
        from repro.perf import PERF

        graph = chain_graph(2)
        arch = small_arch()
        groups = partition_graph(graph, arch, batch=2)
        lmss = [initial_lms(graph, g, arch) for g in groups]
        before = PERF.timer_calls("sa.delta_eval")
        ctl = SAController(
            graph, Evaluator(arch), list(lmss), 2,
            SASettings(iterations=15, seed=0),
        )
        ctl.run()
        assert PERF.timer_calls("sa.delta_eval") > before

    def test_reset_then_requery_reports_exactly_fresh_tallies(self):
        """Regression: a named LRU that lives across a ``reset()`` must
        snapshot as zeroed, then report only post-reset activity —
        stale tallies here would double-count every worker snapshot."""
        from repro.perf import PERF

        d = LruDict(max_entries=4, name="resetfresh")
        d.put("k", 1)
        d.get_lru("k")
        d.get_lru("k")
        d.get_lru("absent")
        assert (d.hits, d.misses) == (2, 1)

        PERF.reset()
        snap = PERF.snapshot()
        assert snap["counters"]["lru.resetfresh.hits"] == 0
        assert snap["counters"]["lru.resetfresh.misses"] == 0

        # Re-query: exactly the new accesses, nothing carried over.
        assert d.get_lru("k") == 1     # working set survived the reset
        d.get_lru("gone")
        snap = PERF.snapshot()
        assert snap["counters"]["lru.resetfresh.hits"] == 1
        assert snap["counters"]["lru.resetfresh.misses"] == 1
        stats = PERF.cache_stats()["lru.resetfresh"]
        assert (stats["hits"], stats["misses"]) == (1, 1)
        assert stats["hit_rate"] == pytest.approx(0.5)


class TestMergeOrderIndependence:
    """Property test: folding worker snapshots is a commutative,
    associative sum — shard scheduling order must never change totals."""

    NAMES = ["dse.candidates", "store.hits", "c.misses", "sa.iterations"]
    LABELS = ["sa.run", "dse.explore", "evaluator.warm.routes"]

    def _random_snapshots(self, rng, n):
        snaps = []
        for _ in range(n):
            counters = {
                name: rng.randint(0, 50)
                for name in self.NAMES if rng.random() < 0.8
            }
            timers = {
                label: {
                    "seconds": rng.uniform(0.0, 5.0),
                    "calls": rng.randint(1, 20),
                }
                for label in self.LABELS if rng.random() < 0.8
            }
            snaps.append({"counters": counters, "timers": timers})
        return snaps

    def _totals(self, reg):
        counters = {name: reg.get(name) for name in self.NAMES}
        timers = {
            label: (reg.timer_seconds(label), reg.timer_calls(label))
            for label in self.LABELS
        }
        return counters, timers

    def _assert_same(self, got, want):
        counters, timers = got
        want_counters, want_timers = want
        assert counters == want_counters
        for label in self.LABELS:
            assert timers[label][0] == pytest.approx(want_timers[label][0])
            assert timers[label][1] == want_timers[label][1]

    def test_shuffles_and_partitions_match_serial_sum(self):
        import random

        rng = random.Random(1234)
        snaps = self._random_snapshots(rng, 9)

        serial = PerfRegistry()
        for snap in snaps:
            serial.merge(snap)
        want = self._totals(serial)

        # Any permutation of arrivals sums identically.
        for _ in range(5):
            order = list(snaps)
            rng.shuffle(order)
            reg = PerfRegistry()
            for snap in order:
                reg.merge(snap)
            self._assert_same(self._totals(reg), want)

        # Hierarchical folding (workers -> shard registries -> parent),
        # with random partition boundaries, sums identically too.
        for _ in range(5):
            order = list(snaps)
            rng.shuffle(order)
            parent = PerfRegistry()
            i = 0
            while i < len(order):
                j = i + rng.randint(1, len(order) - i)
                shard = PerfRegistry()
                for snap in order[i:j]:
                    shard.merge(snap)
                part = shard.snapshot()
                parent.merge({
                    "counters": {
                        k: v for k, v in part["counters"].items()
                        if k in self.NAMES
                    },
                    "timers": part["timers"],
                })
                i = j
            self._assert_same(self._totals(parent), want)
