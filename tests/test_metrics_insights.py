"""Tests for derived metrics and the paper's Discussion-level claims."""


import pytest

from repro.arch import ArchConfig, g_arch
from repro.core import (
    MappingEngine,
    MappingEngineSettings,
    SAController,
    SASettings,
)
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.parser import parse_lms
from repro.evalmodel import (
    Evaluator,
    GroupTrafficAnalyzer,
    average_concurrent_layers,
    d2d_energy_share,
    dram_bytes_per_inference,
    pipeline_fill_drain_loss,
    stage_bound_histogram,
)
from repro.units import GB, MB
from repro.workloads.models import build


@pytest.fixture(scope="module")
def tf_result():
    graph = build("TF")
    engine = MappingEngine(
        g_arch(), settings=MappingEngineSettings(sa=SASettings(iterations=0))
    )
    return graph, engine.map(graph, batch=16)


class TestMetrics:
    def test_average_concurrent_layers_in_range(self, tf_result):
        graph, result = tf_result
        avg = average_concurrent_layers(result)
        assert 1.0 <= avg <= max(len(g) for g in result.groups)

    def test_dram_bytes_positive_and_bounded(self, tf_result):
        graph, result = tf_result
        dram = dram_bytes_per_inference(result)
        assert dram > 0
        # DRAM traffic cannot exceed a silly multiple of all tensors.
        upper = 16 * (graph.total_ofmap_bytes(16) + graph.total_weight_bytes())
        assert dram < upper

    def test_d2d_share_between_0_and_1(self, tf_result):
        _, result = tf_result
        assert 0.0 <= d2d_energy_share(result) <= 1.0

    def test_histogram_counts_groups(self, tf_result):
        _, result = tf_result
        hist = stage_bound_histogram(result)
        assert sum(hist.values()) == len(result.groups)

    def test_fill_drain_loss_fraction(self, tf_result):
        _, result = tf_result
        loss = pipeline_fill_drain_loss(result)
        assert 0.0 <= loss < 1.0

    def test_monolithic_has_zero_d2d_share(self):
        graph = build("TF")
        arch = ArchConfig(
            cores_x=6, cores_y=6, xcut=1, ycut=1, dram_bw=144 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=2 * MB,
            macs_per_core=1024,
        )
        result = MappingEngine(
            arch, settings=MappingEngineSettings(sa=SASettings(iterations=0))
        ).map(graph, batch=4)
        assert d2d_energy_share(result) == 0.0


class TestD2DMinimizationClaim:
    """Sec V-B1: 'the entire search process inherently optimizes D2D
    communication' — accepted schemes carry less D2D traffic."""

    def test_sa_reduces_d2d_volume(self):
        graph = build("TF")
        arch = g_arch()
        evaluator = Evaluator(arch)
        groups = partition_graph(graph, arch, batch=32)
        group = max(groups, key=len)
        initial = initial_lms(graph, group, arch)
        sa = SAController(
            graph, evaluator, [initial], batch=32,
            settings=SASettings(iterations=400, seed=9),
        )
        final = sa.run()[0]

        def d2d_volume(lms):
            parsed = parse_lms(graph, lms)
            intra = evaluator._intra_results(parsed)
            traffic = GroupTrafficAnalyzer(
                graph, arch, evaluator.topo
            ).analyze(parsed, lms, intra, {})
            return traffic.traffic.d2d_volume()

        assert d2d_volume(final) < d2d_volume(initial)


class TestCoreGranularityInsight:
    """Sec VII-A2: more cores -> longer pipelines -> less DRAM traffic
    (with diminishing returns)."""

    def test_more_cores_cut_dram_traffic(self):
        graph = build("TF")
        few = ArchConfig(
            cores_x=2, cores_y=2, xcut=1, ycut=1, dram_bw=128 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=2 * MB,
            macs_per_core=8192,
        )  # 4 cores: pipelines capped at 4 layers
        many = ArchConfig(
            cores_x=4, cores_y=4, xcut=1, ycut=1, dram_bw=128 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=2 * MB,
            macs_per_core=2048,
        )  # 16 cores, same TOPS
        results = {}
        for arch in (few, many):
            result = MappingEngine(
                arch,
                settings=MappingEngineSettings(sa=SASettings(iterations=0)),
            ).map(graph, batch=16)
            results[arch.n_cores] = (
                dram_bytes_per_inference(result),
                average_concurrent_layers(result),
            )
        assert results[16][0] < results[4][0]     # less DRAM traffic
        assert results[16][1] > results[4][1]     # deeper pipelines
