"""Search diagnostics: curves, operator effectiveness, campaign report."""

import os
import random
import statistics

import pytest

from repro.campaign import CampaignRunner, CampaignSpec
from repro.campaign.keys import settings_digest
from repro.cli.main import main
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.sa import SAController, SASettings
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    Workload,
    enumerate_candidates,
)
from repro.evalmodel import Evaluator
from repro.io.serialization import (
    candidate_result_from_dict,
    candidate_result_to_dict,
)
from repro.obs.diag import (
    DIAG,
    SARunDiag,
    StreamingMoments,
    campaign_report_data,
    curve_summary,
    render_campaign_report,
    render_sa_diag,
    sparkline,
)
from repro.perf import PERF
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType


def tiny_graph(n=3):
    g = DNNGraph("tiny")
    prev = None
    for i in range(n):
        g.add_layer(
            Layer(f"l{i}", LayerType.CONV, out_h=8, out_w=8, out_k=32,
                  in_c=3 if prev is None else 32, kernel_r=3, kernel_s=3,
                  pad_h=1, pad_w=1),
            inputs=[prev] if prev else None,
        )
        prev = f"l{i}"
    return g


def small_candidates():
    grid = DseGrid(
        tops=8, cuts=(1, 2), dram_bw_per_tops=(1.0,), noc_bw_gbps=(32,),
        d2d_ratio=(0.5,), glb_kb=(512, 1024), macs_per_core=(1024,),
    )
    return enumerate_candidates(grid)


def run_sa(arch, settings, compiled=True):
    """One annealing run on the tiny graph; returns the controller."""
    evaluator = Evaluator(arch, compiled=compiled)
    graph = tiny_graph()
    groups = partition_graph(graph, arch, batch=2)
    lmss = [initial_lms(graph, g, arch) for g in groups]
    controller = SAController(graph, evaluator, lmss, 2, settings)
    controller.run()
    return controller


class TestStreamingMoments:
    def test_matches_batch_statistics(self):
        rng = random.Random(3)
        xs = [rng.gauss(2.0, 1.5) for _ in range(200)]
        m = StreamingMoments()
        for x in xs:
            m.add(x)
        assert m.count == 200
        assert m.mean == pytest.approx(statistics.fmean(xs))
        assert m.variance == pytest.approx(statistics.pvariance(xs))

    def test_merge_equals_sequential(self):
        rng = random.Random(7)
        xs = [rng.uniform(-1, 1) for _ in range(50)]
        a, b, whole = StreamingMoments(), StreamingMoments(), StreamingMoments()
        for x in xs[:20]:
            a.add(x)
        for x in xs[20:]:
            b.add(x)
        for x in xs:
            whole.add(x)
        a.merge(b)
        assert a.count == whole.count
        assert a.mean == pytest.approx(whole.mean)
        assert a.m2 == pytest.approx(whole.m2)

    def test_merge_into_empty_and_from_empty(self):
        m = StreamingMoments()
        m.add(1.0)
        empty = StreamingMoments()
        empty.merge(m)
        assert (empty.count, empty.mean) == (1, 1.0)
        m.merge(StreamingMoments())
        assert m.count == 1

    def test_dict_round_trip(self):
        m = StreamingMoments()
        for x in (1.0, 2.0, 4.0):
            m.add(x)
        rt = StreamingMoments.from_dict(m.to_dict())
        assert (rt.count, rt.mean, rt.m2) == (m.count, m.mean, m.m2)


class TestSparkline:
    def test_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([5, 5, 5]) == "▁▁▁"
        s = sparkline(list(range(100)), width=10)
        assert len(s) == 10
        assert s[0] == "▁" and s[-1] == "█"


class TestCurveCompaction:
    def test_stride_doubles_and_points_stay_aligned(self):
        d = SARunDiag(iterations=10_000, seed=0, max_points=64)
        for i in range(10_000):
            if d.want(i):
                d.sample(i, 100.0 - i * 0.001, 100.0, 0.1)
        assert len(d.curve) <= 64
        assert d.curve_stride > 1
        # Every kept point sits on the final stride — the set a run
        # started at that stride would have sampled.
        assert all(p[0] % d.curve_stride == 0 for p in d.curve)
        # Best-cost series stays monotone (it was fed monotone).
        best = [p[1] for p in d.curve]
        assert best == sorted(best, reverse=True)

    def test_deterministic(self):
        def record():
            d = SARunDiag(iterations=3000, seed=5, max_points=32)
            for i in range(3000):
                if d.want(i):
                    d.sample(i, 3000 - i, 3000, 0.2)
            return d.to_dict()

        assert record() == record()


class TestControllerRecording:
    def test_diag_off_by_default(self):
        controller = run_sa(
            small_candidates()[0], SASettings(iterations=6, seed=1)
        )
        assert controller._diag is None
        assert controller.stats.diag is None

    def test_diag_records_curve_operators_temps(self):
        controller = run_sa(
            small_candidates()[0],
            SASettings(iterations=20, seed=1, diag=True),
        )
        diag = controller.stats.diag
        assert diag is not None
        assert len(diag["curve"]) == 20
        assert diag["temps"][0][1] == pytest.approx(0.30)
        assert diag["initial_cost"] == controller.stats.initial_cost
        assert diag["final_cost"] == controller.stats.final_cost
        ops = diag["operators"]
        # The recorder agrees with the coarse SAStats tallies.
        assert sum(o["proposed"] for o in ops.values()) == \
            controller.stats.proposed
        assert sum(o["accepted"] for o in ops.values()) == \
            controller.stats.accepted
        assert sum(o["improved"] for o in ops.values()) == \
            controller.stats.improved
        assert {name: o["uses"] for name, o in ops.items()} == \
            controller.stats.operator_uses
        for o in ops.values():
            assert o["delta"]["count"] == o["proposed"]

    def test_trajectory_unchanged_by_recording(self):
        plain = run_sa(
            small_candidates()[0], SASettings(iterations=15, seed=3)
        )
        diagd = run_sa(
            small_candidates()[0],
            SASettings(iterations=15, seed=3, diag=True),
        )
        assert diagd.best_costs == plain.best_costs
        assert diagd.stats.best_iteration == plain.stats.best_iteration
        assert diagd.stats.operator_uses == plain.stats.operator_uses

    def test_object_and_compiled_paths_record_identically(self):
        settings = SASettings(iterations=15, seed=2, diag=True)
        compiled = run_sa(small_candidates()[0], settings, compiled=True)
        objectp = run_sa(small_candidates()[0], settings, compiled=False)
        assert compiled._sessions is not None
        assert objectp._sessions is None
        assert compiled.stats.diag == objectp.stats.diag

    def test_batched_proposals_recorded_per_scored_move(self):
        controller = run_sa(
            small_candidates()[0],
            SASettings(iterations=10, seed=4, proposal_batch=3, diag=True),
        )
        ops = controller.stats.diag["operators"]
        assert sum(o["proposed"] for o in ops.values()) == \
            controller.stats.proposed
        assert sum(o["accepted"] for o in ops.values()) == \
            controller.stats.accepted

    def test_identical_seeds_identical_diag(self):
        settings = SASettings(iterations=12, seed=9, diag=True)
        a = run_sa(small_candidates()[0], settings)
        b = run_sa(small_candidates()[0], settings)
        assert a.stats.diag == b.stats.diag


class TestAggregatorChannel:
    def test_runs_fold_into_this_pid_and_ship_in_snapshots(self):
        PERF.reset()
        run_sa(small_candidates()[0],
               SASettings(iterations=8, seed=1, diag=True))
        snap = PERF.snapshot()
        by_pid = snap["diag"]
        assert list(by_pid) == [str(os.getpid())]
        ops = by_pid[str(os.getpid())]
        assert ops and all("delta" in rec for rec in ops.values())
        # Merging a foreign worker's payload lands under the worker pid.
        PERF.merge({"counters": {}, "timers": {},
                    "diag": {"99999": ops}})
        assert set(PERF.snapshot()["diag"]) == {str(os.getpid()), "99999"}
        PERF.reset()
        assert "diag" not in PERF.snapshot()

    def test_diag_off_ships_nothing(self):
        PERF.reset()
        run_sa(small_candidates()[0], SASettings(iterations=8, seed=1))
        assert "diag" not in PERF.snapshot()


class TestDigestStability:
    def test_diag_flag_never_changes_store_keys(self):
        assert settings_digest(SASettings(diag=True)) == \
            settings_digest(SASettings())


class TestCandidateRoundTrip:
    def evaluate(self):
        explorer = DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=6, seed=11, diag=True),
        )
        return explorer.evaluate_candidate(small_candidates()[0])

    def test_diag_and_operator_uses_round_trip(self):
        result = self.evaluate()
        assert result.operator_uses and result.sa_diag
        (wl_name,) = result.sa_diag
        assert result.sa_diag[wl_name]["restarts"]
        rt = candidate_result_from_dict(candidate_result_to_dict(result))
        assert rt.operator_uses == result.operator_uses
        assert rt.sa_diag == result.sa_diag

    def test_pre_diag_records_still_load(self):
        legacy = candidate_result_to_dict(self.evaluate())
        legacy.pop("operator_uses")
        legacy.pop("sa_diag")
        loaded = candidate_result_from_dict(legacy)
        assert loaded.operator_uses == {}
        assert loaded.sa_diag == {}

    def test_serial_matches_two_workers(self):
        candidates = small_candidates()
        with DesignSpaceExplorer(
            [Workload(tiny_graph(), batch=2)],
            sa_settings=SASettings(iterations=6, seed=11, diag=True),
        ) as explorer:
            serial = explorer.explore(candidates, workers=1)
            parallel = explorer.explore(candidates, workers=2)
        assert [r.sa_diag for r in serial.results] == \
            [r.sa_diag for r in parallel.results]
        assert [r.operator_uses for r in serial.results] == \
            [r.operator_uses for r in parallel.results]


class TestRendering:
    def test_sa_diag_report(self):
        controller = run_sa(
            small_candidates()[0],
            SASettings(iterations=20, seed=1, diag=True),
        )
        text = render_sa_diag([controller.stats.diag])
        assert "best-cost curve" in text
        assert "accept%" in text

    def test_curve_summary_uses_curve_endpoints(self):
        cs = curve_summary({
            "curve": [[0, 10.0, 10.0], [5, 4.0, 6.0]],
            "curve_stride": 1, "best_iteration": 5,
        })
        assert cs["initial"] == 10.0 and cs["final"] == 4.0
        assert cs["points"] == 2 and cs["spark"]


@pytest.fixture
def diag_campaign(tmp_path):
    """A finished 2-candidate campaign run with diagnostics on."""
    home = tmp_path / "campaigns"
    PERF.reset()
    DIAG.clear()
    spec = CampaignSpec(
        name="diagcamp",
        candidates=small_candidates()[:2],
        workloads=[Workload(tiny_graph(), batch=2)],
        sa=SASettings(iterations=6, seed=11, diag=True),
        warm_start=True,
    )
    with CampaignRunner(spec, home) as runner:
        runner.run(workers=1)
    return home


class TestCampaignReport:
    def test_store_only_report_has_curves_and_operator_stats(
        self, diag_campaign
    ):
        data = campaign_report_data(diag_campaign, "diagcamp")
        assert data["done"] == 2
        for cand in data["candidates"]:
            assert cand["curves"]
            for cs in cand["curves"].values():
                assert cs["spark"] and cs["points"] > 0
            assert cand["operator_uses"]
        assert data["diag_by_pid"]
        (pid,) = data["diag_by_pid"]
        assert pid == str(os.getpid())
        assert data["iters_to_best"]["cold_runs"] == 2

        text = render_campaign_report(data)
        assert "search report" in text
        assert "convergence" in text
        assert "pooled over shards" in text

    def test_ledger_perf_event_carries_diag(self, diag_campaign):
        from repro.obs.ledger import read_ledger
        from repro.obs.watch import ledger_path

        events, _ = read_ledger(ledger_path(diag_campaign, "diagcamp"))
        perf = events[-1]
        assert perf["event"] == "perf"
        assert str(os.getpid()) in perf["diag"]

    def test_cli_report_text_and_json(self, diag_campaign, capsys):
        rc = main(["campaign", "report", "--name", "diagcamp",
                   "--out", str(diag_campaign)])
        assert rc == 0
        assert "search report" in capsys.readouterr().out

        import json

        rc = main(["campaign", "report", "--name", "diagcamp",
                   "--out", str(diag_campaign), "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["done"] == 2

    def test_cli_sa_report(self, capsys):
        rc = main(["sa-report", "--model", "MBV2", "--batch", "2",
                   "--iters", "6", "--restarts", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "best-cost curve" in out
        assert "restart" in out
