"""Unit tests for architecture configuration, topology and routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import (
    ArchConfig,
    DEFAULT_AREA,
    FoldedTorusTopology,
    MeshTopology,
    arrange_cores,
    cores_for_tops,
    g_arch,
    s_arch,
    t_arch,
)
from repro.errors import InvalidArchitectureError
from repro.units import GB, MB


def mesh_arch(x=4, y=4, xcut=2, ycut=1, **kw):
    defaults = dict(
        cores_x=x, cores_y=y, xcut=xcut, ycut=ycut,
        dram_bw=64 * GB, noc_bw=32 * GB, d2d_bw=16 * GB,
        glb_bytes=1 * MB, macs_per_core=1024,
    )
    defaults.update(kw)
    return ArchConfig(**defaults)


class TestArrangement:
    def test_paper_examples(self):
        assert arrange_cores(36) == (6, 6)
        assert arrange_cores(18) == (6, 3)

    def test_prime_falls_back_to_strip(self):
        assert arrange_cores(7) == (7, 1)

    def test_cores_for_tops(self):
        assert cores_for_tops(72, 1024) == 36
        assert cores_for_tops(72, 2048) == 18
        assert cores_for_tops(72, 8192) is None  # 4.5 cores: invalid
        assert cores_for_tops(512, 8192) == 32


class TestArchConfig:
    def test_chiplet_geometry(self):
        a = mesh_arch(x=6, y=6, xcut=2, ycut=1)
        assert a.n_chiplets == 2
        assert a.cores_per_chiplet == 18
        assert a.chiplet_of(2, 5) == (0, 0)
        assert a.chiplet_of(3, 0) == (1, 0)

    def test_tops_accounting(self):
        assert g_arch().tops == pytest.approx(72.0)
        assert t_arch().tops == pytest.approx(240.0)

    def test_invalid_cut_rejected(self):
        with pytest.raises(InvalidArchitectureError):
            mesh_arch(x=6, xcut=4)

    def test_d2d_cannot_exceed_noc(self):
        with pytest.raises(InvalidArchitectureError):
            mesh_arch(d2d_bw=64 * GB, noc_bw=32 * GB)

    def test_monolithic_ignores_d2d(self):
        a = mesh_arch(xcut=1, ycut=1, d2d_bw=0)
        assert a.is_monolithic

    def test_dram_units(self):
        assert mesh_arch(dram_bw=144 * GB).n_dram == 5
        assert mesh_arch(dram_bw=64 * GB).n_dram == 2

    def test_paper_tuple_format(self):
        assert g_arch().paper_tuple() == \
            "(2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024)"


class TestMeshTopology:
    def test_core_indexing_roundtrip(self):
        topo = MeshTopology(mesh_arch())
        for i in range(16):
            assert topo.core_index(topo.core_node(i)) == i

    def test_d2d_links_at_cut(self):
        topo = MeshTopology(mesh_arch(x=4, y=4, xcut=2, ycut=1))
        # Links crossing x=1->x=2 are D2D.
        link = topo.link_between(("core", 1, 0), ("core", 2, 0))
        assert link.is_d2d
        link = topo.link_between(("core", 0, 0), ("core", 1, 0))
        assert not link.is_d2d

    def test_monolithic_has_no_d2d(self):
        topo = MeshTopology(mesh_arch(xcut=1, ycut=1, d2d_bw=32 * GB))
        assert topo.d2d_link_indices() == []

    def test_io_links_are_d2d_when_multichiplet(self):
        topo = MeshTopology(mesh_arch(xcut=2))
        dram = topo.dram_node(0)
        router = topo.attach_router(dram)
        assert topo.link_between(dram, router).is_d2d

    def test_xy_route_length(self):
        topo = MeshTopology(mesh_arch())
        route = topo.route(("core", 0, 0), ("core", 3, 2))
        assert len(route) == 5  # 3 hops in X + 2 in Y

    def test_route_is_xy_ordered(self):
        topo = MeshTopology(mesh_arch())
        route = topo.route(("core", 0, 0), ("core", 2, 2))
        links = [topo.links[i] for i in route]
        # X movement first, then Y.
        xs = [l.dst[1] for l in links]
        assert xs == [1, 2, 2, 2]

    def test_route_to_dram_ends_with_io_link(self):
        topo = MeshTopology(mesh_arch())
        route = topo.route(("core", 2, 2), topo.dram_node(0))
        assert topo.links[route[-1]].is_io

    def test_route_from_dram_starts_with_io_link(self):
        topo = MeshTopology(mesh_arch())
        route = topo.route(topo.dram_node(0), ("core", 2, 2))
        assert topo.links[route[0]].is_io

    def test_self_route_empty(self):
        topo = MeshTopology(mesh_arch())
        assert topo.route(("core", 1, 1), ("core", 1, 1)) == ()

    def test_d2d_bandwidth_applied(self):
        arch = mesh_arch(noc_bw=32 * GB, d2d_bw=8 * GB)
        topo = MeshTopology(arch)
        for link in topo.links:
            assert link.bandwidth == (8 * GB if link.is_d2d else 32 * GB)


class TestFoldedTorus:
    def test_has_wrap_links(self):
        topo = FoldedTorusTopology(mesh_arch(xcut=1, ycut=1))
        assert (("core", 3, 0), ("core", 0, 0)) in topo._by_endpoints

    def test_wrap_routing_is_shorter(self):
        arch = mesh_arch(x=8, y=1, xcut=1, ycut=1)
        mesh = MeshTopology(arch)
        torus = FoldedTorusTopology(arch)
        src, dst = ("core", 0, 0), ("core", 7, 0)
        assert len(mesh.route(src, dst)) == 7
        assert len(torus.route(src, dst)) == 1

    def test_route_terminates_everywhere(self):
        topo = FoldedTorusTopology(mesh_arch(x=5, y=3, xcut=1, ycut=1))
        for i in range(15):
            for j in range(15):
                route = topo.route(topo.core_node(i), topo.core_node(j))
                assert len(route) <= 5 + 3


class TestAreaModel:
    def test_simba_like_d2d_fraction(self):
        frac = DEFAULT_AREA.d2d_area_fraction(s_arch())
        assert 0.30 < frac < 0.45  # paper: "nearly 40%"

    def test_g_arch_d2d_fraction_small(self):
        assert DEFAULT_AREA.d2d_area_fraction(g_arch()) < 0.20

    def test_monolithic_single_die(self):
        dies = DEFAULT_AREA.die_areas(mesh_arch(xcut=1, ycut=1))
        assert len(dies) == 1

    def test_chiplet_die_count(self):
        dies = DEFAULT_AREA.die_areas(mesh_arch(xcut=2, ycut=2))
        assert len(dies) == 4 + 2  # computing + two IO dies

    def test_area_monotone_in_glb(self):
        small = DEFAULT_AREA.total_area(mesh_arch(glb_bytes=1 * MB))
        large = DEFAULT_AREA.total_area(mesh_arch(glb_bytes=4 * MB))
        assert large > small


@settings(max_examples=30, deadline=None)
@given(
    x=st.integers(2, 8),
    y=st.integers(2, 8),
    src=st.integers(0, 63),
    dst=st.integers(0, 63),
)
def test_mesh_route_property(x, y, src, dst):
    """XY routes exist, are minimal, and traverse valid links."""
    arch = mesh_arch(x=x, y=y, xcut=1, ycut=1)
    topo = MeshTopology(arch)
    n = x * y
    a, b = topo.core_node(src % n), topo.core_node(dst % n)
    route = topo.route(a, b)
    manhattan = abs(a[1] - b[1]) + abs(a[2] - b[2])
    assert len(route) == manhattan
    # Route is connected: each link starts where the previous ended.
    prev = a
    for idx in route:
        link = topo.links[idx]
        assert link.src == prev
        prev = link.dst
    assert prev == b
