"""Unit tests for the NoC substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchConfig, MeshTopology
from repro.noc import (
    Flow,
    TrafficMap,
    analytic_lower_bound,
    multicast_hop_savings,
    multicast_tree,
    simulate_completion_time,
)
from repro.units import GB, MB


@pytest.fixture
def topo():
    arch = ArchConfig(
        cores_x=4, cores_y=4, xcut=2, ycut=1,
        dram_bw=64 * GB, noc_bw=32 * GB, d2d_bw=16 * GB,
        glb_bytes=1 * MB, macs_per_core=1024,
    )
    return MeshTopology(arch)


class TestTrafficMap:
    def test_flow_adds_on_every_route_link(self, topo):
        tm = TrafficMap(topo)
        src, dst = ("core", 0, 0), ("core", 3, 3)
        tm.add_flow(src, dst, 100.0)
        route = topo.route(src, dst)
        for idx in route:
            assert tm.volumes[idx] == 100.0
        assert tm.total_byte_hops() == 100.0 * len(route)

    def test_zero_volume_ignored(self, topo):
        tm = TrafficMap(topo)
        tm.add_flow(("core", 0, 0), ("core", 1, 0), 0.0)
        assert tm.total_byte_hops() == 0.0

    def test_serialization_time_uses_link_bandwidth(self, topo):
        tm = TrafficMap(topo)
        # Cross the D2D boundary: D2D bandwidth is half, so the D2D link
        # dominates the serialization time.
        tm.add_flow(("core", 1, 0), ("core", 2, 0), 32 * GB)
        assert tm.serialization_time() == pytest.approx(2.0)

    def test_d2d_volume_counts_once_per_crossing(self, topo):
        tm = TrafficMap(topo)
        tm.add_flow(("core", 0, 0), ("core", 3, 0), 10.0)
        assert tm.d2d_volume() == 10.0  # one boundary crossing

    def test_merge_and_scale(self, topo):
        a, b = TrafficMap(topo), TrafficMap(topo)
        a.add_flow(("core", 0, 0), ("core", 1, 0), 5.0)
        b.add_flow(("core", 0, 0), ("core", 1, 0), 7.0)
        a.merge(b)
        assert a.total_byte_hops() == 12.0
        assert a.scaled(2.0).total_byte_hops() == 24.0

    def test_dram_flow_touches_io_link(self, topo):
        tm = TrafficMap(topo)
        tm.add_flow(topo.dram_node(0), ("core", 2, 2), 50.0)
        assert tm.io_volume() == 50.0


class TestMulticast:
    def test_tree_is_union_of_paths(self, topo):
        src = ("core", 0, 0)
        dsts = [("core", 3, 0), ("core", 3, 1)]
        tree = multicast_tree(topo, src, dsts)
        for d in dsts:
            assert set(topo.route(src, d)) <= tree

    def test_shared_prefix_saves_hops(self, topo):
        src = ("core", 0, 0)
        dsts = [("core", 3, 0), ("core", 3, 1), ("core", 3, 2)]
        assert multicast_hop_savings(topo, src, dsts) > 0

    def test_disjoint_paths_save_nothing(self, topo):
        src = ("core", 1, 1)
        dsts = [("core", 0, 1), ("core", 2, 1)]
        assert multicast_hop_savings(topo, src, dsts) == 0

    def test_single_destination_tree_is_path(self, topo):
        src, dst = ("core", 0, 0), ("core", 2, 2)
        assert multicast_tree(topo, src, [dst]) == frozenset(topo.route(src, dst))


class TestFlowSim:
    def test_single_flow_time(self, topo):
        flow = Flow(topo.route(("core", 0, 0), ("core", 1, 0)), 32 * GB)
        t = simulate_completion_time(topo, [flow])
        assert t == pytest.approx(1.0)

    def test_two_flows_share_a_link(self, topo):
        route = topo.route(("core", 0, 0), ("core", 1, 0))
        flows = [Flow(route, 16 * GB), Flow(route, 16 * GB)]
        t = simulate_completion_time(topo, flows)
        assert t == pytest.approx(1.0)  # both at half rate

    def test_unequal_flows_finish_in_stages(self, topo):
        route = topo.route(("core", 0, 0), ("core", 1, 0))
        flows = [Flow(route, 8 * GB), Flow(route, 24 * GB)]
        # Fair sharing: small flow done at t=0.5; big finishes at t=1.0.
        t = simulate_completion_time(topo, flows)
        assert t == pytest.approx(1.0)

    def test_empty_routes_complete_instantly(self, topo):
        assert simulate_completion_time(topo, [Flow((), 100.0)]) == 0.0

    def test_analytic_is_lower_bound(self, topo):
        rng = np.random.default_rng(7)
        cores = topo.core_nodes()
        flows = []
        for _ in range(20):
            a, b = rng.choice(len(cores), 2, replace=False)
            flows.append(
                Flow(topo.route(cores[a], cores[b]), float(rng.integers(1, 100)) * 1e6)
            )
        lb = analytic_lower_bound(topo, flows)
        sim = simulate_completion_time(topo, flows)
        assert sim >= lb * (1 - 1e-9)

    def test_bound_tight_for_single_bottleneck(self, topo):
        route = topo.route(("core", 0, 0), ("core", 3, 0))
        flows = [Flow(route, 10 * GB)]
        assert simulate_completion_time(topo, flows) == pytest.approx(
            analytic_lower_bound(topo, flows)
        )


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15),
                          st.floats(1.0, 1e9)), min_size=1, max_size=12))
def test_flowsim_vs_bound_property(pairs):
    arch = ArchConfig(
        cores_x=4, cores_y=4, xcut=1, ycut=1,
        dram_bw=64 * GB, noc_bw=32 * GB, d2d_bw=32 * GB,
        glb_bytes=1 * MB, macs_per_core=1024,
    )
    topo = MeshTopology(arch)
    flows = [
        Flow(topo.route(topo.core_node(a), topo.core_node(b)), vol)
        for a, b, vol in pairs
    ]
    lb = analytic_lower_bound(topo, flows)
    sim = simulate_completion_time(topo, flows)
    assert sim >= lb * (1 - 1e-9)
    # And the simulator can't be worse than fully serializing every flow.
    assert sim <= sum(f.volume for f in flows) / (32 * GB) + 1e-9
