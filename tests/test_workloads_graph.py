"""Unit tests for DNNGraph and the model zoo."""

import pytest

from repro.errors import InvalidWorkloadError
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType
from repro.workloads.models import MODEL_REGISTRY, build


def small_chain():
    g = DNNGraph("chain")
    g.add_layer(Layer("a", LayerType.CONV, out_h=8, out_w=8, out_k=16, in_c=3,
                      kernel_r=3, kernel_s=3, pad_h=1, pad_w=1))
    g.add_layer(Layer("b", LayerType.CONV, out_h=8, out_w=8, out_k=32, in_c=16,
                      kernel_r=3, kernel_s=3, pad_h=1, pad_w=1), inputs=["a"])
    g.add_layer(Layer("c", LayerType.POOL, out_h=4, out_w=4, out_k=32, in_c=32,
                      kernel_r=2, kernel_s=2, stride=2), inputs=["b"])
    return g


class TestConstruction:
    def test_duplicate_name_rejected(self):
        g = small_chain()
        with pytest.raises(InvalidWorkloadError):
            g.add_layer(Layer("a", LayerType.FC, out_h=1, out_w=1,
                              out_k=10, in_c=512))

    def test_unknown_input_rejected(self):
        g = DNNGraph("g")
        with pytest.raises(InvalidWorkloadError):
            g.add_layer(Layer("x", LayerType.FC, out_h=1, out_w=1,
                              out_k=10, in_c=512), inputs=["ghost"])

    def test_concat_channel_mismatch_rejected(self):
        g = small_chain()
        with pytest.raises(InvalidWorkloadError):
            g.add_layer(
                Layer("bad", LayerType.CONV, out_h=4, out_w=4, out_k=8, in_c=99),
                inputs=["c"],
            )

    def test_add_channel_mismatch_rejected(self):
        g = small_chain()
        with pytest.raises(InvalidWorkloadError):
            g.add_layer(
                Layer("bad", LayerType.ELTWISE, out_h=8, out_w=8,
                      out_k=16, in_c=16),
                inputs=["a", "b"],
                combine="add",
            )


class TestQueries:
    def test_topological_order_is_valid(self):
        g = small_chain()
        order = g.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_input_layer_detection(self):
        g = small_chain()
        assert g.reads_graph_input("a")
        assert not g.reads_graph_input("b")

    def test_output_layers(self):
        g = small_chain()
        assert g.output_layers() == ["c"]

    def test_input_slices_concat(self):
        g = DNNGraph("g")
        g.add_layer(Layer("p1", LayerType.CONV, out_h=4, out_w=4, out_k=8, in_c=3))
        g.add_layer(Layer("p2", LayerType.CONV, out_h=4, out_w=4, out_k=24, in_c=3))
        g.add_layer(
            Layer("cat", LayerType.VECTOR, out_h=4, out_w=4, out_k=32, in_c=32),
            inputs=["p1", "p2"],
        )
        slices = g.input_slices("cat")
        assert [(s.producer, s.c_lo, s.c_hi) for s in slices] == [
            ("p1", 0, 8),
            ("p2", 8, 32),
        ]

    def test_input_slices_add_covers_full_range(self):
        g = DNNGraph("g")
        g.add_layer(Layer("p1", LayerType.CONV, out_h=4, out_w=4, out_k=8, in_c=3))
        g.add_layer(Layer("p2", LayerType.CONV, out_h=4, out_w=4, out_k=8, in_c=3))
        g.add_layer(
            Layer("sum", LayerType.ELTWISE, out_h=4, out_w=4, out_k=8, in_c=8),
            inputs=["p1", "p2"],
            combine="add",
        )
        for s in g.input_slices("sum"):
            assert (s.c_lo, s.c_hi) == (0, 8)


class TestModelZoo:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_models_build_and_validate(self, name):
        g = build(name)
        g.validate()
        assert len(g) > 10
        assert g.total_macs(1) > 0

    def test_resnet50_known_stats(self):
        g = build("RN-50")
        # ~4.1 GMACs and ~25.5 M parameters for ImageNet ResNet-50.
        assert 3.8e9 < g.total_macs(1) < 4.4e9
        assert 24e6 < g.total_weight_bytes() < 27e6

    def test_resnext_cheaper_3x3_but_similar_total(self):
        rn, rnx = build("RN-50"), build("RNX")
        assert abs(rnx.total_macs(1) - rn.total_macs(1)) / rn.total_macs(1) < 0.2

    def test_transformer_macs_formula(self):
        g = build("TF")
        seq, d, dff, n = 64, 512, 2048, 6
        per_layer = 4 * seq * d * d + 2 * seq * seq * d + 2 * seq * d * dff
        expected = n * per_layer + seq * d * d  # + embedding projection
        # VECTOR/ELTWISE layers add only elementwise ops (<1% here).
        assert abs(g.total_macs(1) - expected) / expected < 0.01

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build("nope")

    def test_models_are_dags(self):
        for name in MODEL_REGISTRY:
            g = build(name)
            assert len(g.topological_order()) == len(g)
