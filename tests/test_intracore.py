"""Unit tests for the intra-core exploration engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import ArchConfig, DEFAULT_ENERGY
from repro.intracore import (
    CoreWorkload,
    IntraCoreEngine,
    PEArray,
    schedule_workload,
)
from repro.units import GB, KB, MB
from repro.workloads.layer import LayerType


def conv_wl(**kw):
    defaults = dict(
        kind=LayerType.CONV, b=1, k=64, h=28, w=28, c=64, r=3, s=3, stride=1
    )
    defaults.update(kw)
    return CoreWorkload(**defaults)


def schedule(wl, glb=1 * MB, macs=1024):
    return schedule_workload(
        wl,
        glb_bytes=glb,
        macs_per_core=macs,
        frequency=1e9,
        glb_bytes_per_cycle=64,
        vector_lanes=64,
        energy=DEFAULT_ENERGY,
    )


class TestPEArray:
    def test_lane_split_is_power_of_two(self):
        pe = PEArray(1024)
        assert pe.lanes_k * pe.lanes_c == 1024
        assert pe.lanes_k == 32

    def test_full_utilization_on_aligned_shape(self):
        pe = PEArray(1024)
        wl = conv_wl(k=64, c=64)
        assert pe.utilization(wl) == pytest.approx(1.0)

    def test_small_k_underutilizes(self):
        pe = PEArray(1024)
        wl = conv_wl(k=4)  # far below 32 K-lanes
        assert pe.utilization(wl) < 0.2

    def test_cycles_scale_with_batch(self):
        pe = PEArray(1024)
        assert pe.cycles(conv_wl(b=4)) == 4 * pe.cycles(conv_wl(b=1))

    def test_vector_layer_needs_no_pe(self):
        pe = PEArray(1024)
        wl = CoreWorkload(kind=LayerType.ELTWISE, b=1, k=64, h=28, w=28, c=64)
        assert pe.cycles(wl) == 0


class TestCoreWorkload:
    def test_conv_macs(self):
        wl = conv_wl()
        assert wl.macs() == 28 * 28 * 64 * 64 * 9

    def test_matmul_second_operand_is_per_sample(self):
        wl = CoreWorkload(kind=LayerType.MATMUL, b=2, k=64, h=64, w=1, c=512)
        assert wl.weight_bytes() == 2 * 64 * 512

    def test_receptive_field(self):
        wl = conv_wl(h=28, r=3, stride=2)
        assert wl.in_h == 27 * 2 + 3

    def test_grouped_weights(self):
        dense = conv_wl()
        grouped = conv_wl(groups=32)
        assert grouped.weight_bytes() == dense.weight_bytes() // 32


class TestSchedule:
    def test_result_fits_in_large_glb(self):
        res = schedule(conv_wl(), glb=8 * MB)
        assert res.fits
        assert res.compute_time > 0
        assert res.energy > 0

    def test_small_glb_increases_fetches_or_fails_fit(self):
        big = schedule(conv_wl(k=512, c=512), glb=8 * MB)
        small = schedule(conv_wl(k=512, c=512), glb=256 * KB)
        refetch_big = big.if_fetches * big.w_fetches * big.of_writebacks
        refetch_small = (
            small.if_fetches * small.w_fetches * small.of_writebacks
        )
        assert (not small.fits) or refetch_small >= refetch_big

    def test_compute_bound_time_matches_cycles(self):
        res = schedule(conv_wl(), glb=8 * MB)
        assert res.compute_time >= res.cycles / 1e9

    def test_vector_layer_scheduled_on_vector_unit(self):
        wl = CoreWorkload(kind=LayerType.POOL, b=1, k=64, h=28, w=28, c=64,
                          r=2, s=2, stride=2)
        res = schedule(wl)
        assert res.loop_order == "VEC"
        assert res.fits

    def test_multiplier_semantics(self):
        res = schedule(conv_wl(), glb=8 * MB)
        assert res.if_fetches >= 1
        assert res.w_fetches >= 1
        assert res.of_writebacks >= 1

    def test_whole_layer_resident_needs_single_fetch(self):
        # Tiny workload: everything fits, so all multipliers must be 1.
        res = schedule(conv_wl(k=16, c=16, h=8, w=8), glb=4 * MB)
        assert (res.if_fetches, res.w_fetches, res.of_writebacks) == (1, 1, 1)

    def test_always_returns_something(self):
        # Pathological: even the smallest tile (one output row, one
        # channel) exceeds the budget because the row itself is huge.
        res = schedule(conv_wl(b=8, k=64, c=64, h=64, w=4096), glb=4 * KB)
        assert res is not None
        assert not res.fits


class TestEngineCache:
    def test_cache_hit_on_repeat(self):
        arch = ArchConfig(
            cores_x=2, cores_y=2, xcut=1, ycut=1, dram_bw=64 * GB,
            noc_bw=32 * GB, d2d_bw=32 * GB, glb_bytes=1 * MB,
            macs_per_core=1024,
        )
        eng = IntraCoreEngine(arch, DEFAULT_ENERGY)
        wl = conv_wl()
        r1 = eng.schedule(wl)
        r2 = eng.schedule(wl)
        assert r1 is r2
        assert eng.hits == 1
        assert eng.misses == 1


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(1, 256),
    c=st.integers(1, 256),
    h=st.integers(1, 56),
    b=st.integers(1, 4),
)
def test_schedule_invariants(k, c, h, b):
    wl = conv_wl(k=k, c=c, h=h, b=b, w=7)
    res = schedule(wl, glb=2 * MB)
    assert res.compute_time > 0
    assert res.energy > 0
    assert res.glb_bytes >= wl.ofmap_bytes()
    # Energy must be at least the pure MAC energy.
    assert res.energy >= wl.macs() * DEFAULT_ENERGY.e_mac
