"""Coverage for remaining corners: torus D2D, heatmap rendering,
initial-scheme spare handling, flow-record round filtering."""


from repro.arch import ArchConfig, FoldedTorusTopology, MeshTopology
from repro.core import LayerGroup
from repro.core.initial import initial_lms
from repro.core.graphpart import partition_graph
from repro.core.parser import parse_lms
from repro.evalmodel import Evaluator, GroupTrafficAnalyzer
from repro.evalmodel.traffic_analysis import FlowRecord, round_flows
from repro.noc import TrafficMap
from repro.reporting import link_heat, render_ascii
from repro.units import GB, MB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType
from repro.workloads.models import build


def arch(x=4, y=4, xcut=2, ycut=1, **kw):
    defaults = dict(
        cores_x=x, cores_y=y, xcut=xcut, ycut=ycut, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB,
        macs_per_core=1024,
    )
    defaults.update(kw)
    return ArchConfig(**defaults)


class TestTorusD2D:
    def test_wrap_link_crossing_cut_is_d2d(self):
        a = arch(x=4, y=2, xcut=2, ycut=1)
        topo = FoldedTorusTopology(a)
        wrap = topo.link_between(("core", 3, 0), ("core", 0, 0))
        assert wrap.is_d2d  # endpoints live on different chiplets

    def test_wrap_link_within_chiplet_is_not_d2d(self):
        a = arch(x=2, y=4, xcut=1, ycut=2)
        topo = FoldedTorusTopology(a)
        wrap = topo.link_between(("core", 1, 0), ("core", 0, 0))
        assert not wrap.is_d2d  # x wrap stays inside the chiplet column

    def test_torus_has_more_links_than_mesh(self):
        a = arch(x=4, y=4, xcut=1, ycut=1, d2d_bw=32 * GB)
        assert FoldedTorusTopology(a).n_links > MeshTopology(a).n_links


class TestHeatmapCorners:
    def test_empty_traffic_renders(self):
        topo = MeshTopology(arch())
        tm = TrafficMap(topo)
        art = render_ascii(tm)
        assert art.count("o") == 16
        assert link_heat(tm) == []

    def test_io_flag_propagates(self):
        topo = MeshTopology(arch())
        tm = TrafficMap(topo)
        tm.add_flow(topo.dram_node(0), ("core", 0, 0), 10.0)
        records = link_heat(tm)
        assert any(r.is_io for r in records)

    def test_no_double_d2d_display_when_disabled(self):
        topo = MeshTopology(arch())
        tm = TrafficMap(topo)
        tm.add_flow(("core", 1, 0), ("core", 2, 0), 10.0)
        [rec] = [r for r in link_heat(tm, double_d2d=False) if r.is_d2d]
        assert rec.display_volume == rec.volume


class TestInitialSparePool:
    def test_unfactorable_layer_returns_spares(self):
        """A layer whose extents cannot absorb its share gives cores
        back instead of breaking the encoding."""
        g = DNNGraph("g")
        g.add_layer(Layer("tiny", LayerType.FC, out_h=1, out_w=1,
                          out_k=3, in_c=64))
        g.add_layer(Layer("big", LayerType.CONV, out_h=32, out_w=32,
                          out_k=64, in_c=3), inputs=[])
        group = LayerGroup(("tiny", "big"), batch_unit=1)
        a = arch(x=4, y=4, xcut=1, ycut=1, d2d_bw=32 * GB)
        lms = initial_lms(g, group, a)
        # tiny can use at most 3 cores (k=3, everything else is 1).
        assert lms.scheme("tiny").n_cores <= 3
        assert lms.scheme("big").n_cores >= 1


class TestRoundFlows:
    def topo(self):
        return MeshTopology(arch())

    def test_once_flows_excluded(self):
        topo = self.topo()
        flows = [
            FlowRecord("weight", "l", topo.dram_node(0), ("core", 0, 0),
                       10.0, once=True),
            FlowRecord("ifmap", "l", ("core", 0, 0), ("core", 1, 0), 5.0),
        ]
        kept = round_flows(flows, topo)
        assert len(kept) == 1
        assert kept[0].kind == "ifmap"

    def test_multicast_collapsed_to_longest(self):
        topo = self.topo()
        dram = topo.dram_node(0)
        near = ("core", 0, 0)
        far = ("core", 3, 3)
        flows = [
            FlowRecord("weight", "l", dram, near, 10.0, multicast_group=1),
            FlowRecord("weight", "l", dram, far, 10.0, multicast_group=1),
        ]
        kept = round_flows(flows, topo)
        assert len(kept) == 1
        assert kept[0].dst == far

    def test_distinct_groups_kept_separately(self):
        topo = self.topo()
        dram = topo.dram_node(0)
        flows = [
            FlowRecord("weight", "l", dram, ("core", 0, 0), 10.0,
                       multicast_group=1),
            FlowRecord("weight", "l", dram, ("core", 1, 0), 10.0,
                       multicast_group=2),
        ]
        assert len(round_flows(flows, topo)) == 2

    def test_none_flows(self):
        assert round_flows(None, self.topo()) == []


class TestAnalyzerFlowFlags:
    def test_resident_weights_marked_once(self):
        graph = build("TF")
        a = ArchConfig(
            cores_x=6, cores_y=6, xcut=2, ycut=1, dram_bw=144 * GB,
            noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=8 * MB,
            macs_per_core=1024,
        )  # huge GLB: every TF weight slice is resident
        evaluator = Evaluator(a)
        group = partition_graph(graph, a, batch=8)[1]
        lms = initial_lms(graph, group, a)
        parsed = parse_lms(graph, lms)
        intra = evaluator._intra_results(parsed)
        analyzer = GroupTrafficAnalyzer(graph, a, evaluator.topo,
                                        collect_flows=True)
        traffic = analyzer.analyze(parsed, lms, intra, {})
        weight_flows = [f for f in traffic.flows if f.kind == "weight"]
        assert weight_flows
        assert all(f.once for f in weight_flows)
        assert all(f.multicast_group is not None for f in weight_flows)
