"""Unit and integration tests for the Evaluator (Sec V-B2)."""

import pytest

from repro.arch import ArchConfig, g_arch
from repro.core.encoding import (
    IMPLICIT,
    FlowOfData,
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    Partition,
)
from repro.core.initial import initial_lms
from repro.evalmodel import Evaluator, GroupTrafficAnalyzer, pipeline_utilization
from repro.core.parser import parse_lms
from repro.units import GB, MB
from repro.workloads.graph import DNNGraph
from repro.workloads.layer import Layer, LayerType
from repro.workloads.models import build


def small_arch(**kw):
    defaults = dict(
        cores_x=4, cores_y=4, xcut=2, ycut=1, dram_bw=64 * GB,
        noc_bw=32 * GB, d2d_bw=16 * GB, glb_bytes=1 * MB, macs_per_core=1024,
    )
    defaults.update(kw)
    return ArchConfig(**defaults)


def two_layer_graph():
    g = DNNGraph("g")
    g.add_layer(Layer("a", LayerType.CONV, out_h=16, out_w=16, out_k=32,
                      in_c=3, kernel_r=3, kernel_s=3, pad_h=1, pad_w=1))
    g.add_layer(Layer("b", LayerType.CONV, out_h=16, out_w=16, out_k=32,
                      in_c=32, kernel_r=3, kernel_s=3, pad_h=1, pad_w=1),
                inputs=["a"])
    return g


def manual_lms(g, cg_a, cg_b, part_a, part_b, unit=1):
    group = LayerGroup(("a", "b"), batch_unit=unit)
    return LayerGroupMapping(group, {
        "a": MappingScheme(part_a, cg_a, FlowOfData(0, 0, IMPLICIT)),
        "b": MappingScheme(part_b, cg_b, FlowOfData(IMPLICIT, 0, 0)),
    })


class TestGroupEvaluation:
    def test_positive_results(self):
        g = two_layer_graph()
        arch = small_arch()
        lms = manual_lms(
            g, (0, 1), (2, 3), Partition(1, 1, 1, 2), Partition(2, 1, 1, 1)
        )
        ev = Evaluator(arch).evaluate_group(g, lms, batch=4)
        assert ev.delay > 0
        assert ev.energy.total > 0
        assert ev.energy.intra > 0
        assert ev.energy.dram > 0
        assert ev.rounds == 4

    def test_d2d_energy_appears_when_crossing_chiplets(self):
        g = two_layer_graph()
        arch = small_arch()
        # Producer on chiplet 0 (cores 0,1), consumer on chiplet 1
        # (cores 2,3 are x=2,3): inter-layer traffic must cross the cut.
        lms = manual_lms(
            g, (0, 1), (2, 3), Partition(1, 1, 1, 2), Partition(2, 1, 1, 1)
        )
        ev = Evaluator(arch).evaluate_group(g, lms, batch=1)
        assert ev.energy.d2d > 0

    def test_colocated_pipeline_avoids_network(self):
        """Same-core producer/consumer parts keep data in the GLB."""
        g = two_layer_graph()
        arch = small_arch()
        near = manual_lms(
            g, (0,), (1,), Partition(1, 1, 1, 1), Partition(1, 1, 1, 1)
        )
        far = manual_lms(
            g, (0,), (15,), Partition(1, 1, 1, 1), Partition(1, 1, 1, 1)
        )
        ev_near = Evaluator(arch).evaluate_group(g, near, batch=1)
        ev_far = Evaluator(arch).evaluate_group(g, far, batch=1)
        assert ev_far.energy.network > ev_near.energy.network

    def test_delay_scales_with_batch(self):
        g = two_layer_graph()
        arch = small_arch()
        lms = manual_lms(
            g, (0, 1), (2, 3), Partition(1, 1, 1, 2), Partition(2, 1, 1, 1)
        )
        ev1 = Evaluator(arch).evaluate_group(g, lms, batch=1)
        ev8 = Evaluator(arch).evaluate_group(g, lms, batch=8)
        assert ev8.delay > 4 * ev1.delay

    def test_keep_traffic_exposes_map(self):
        g = two_layer_graph()
        arch = small_arch()
        lms = manual_lms(
            g, (0,), (15,), Partition(1, 1, 1, 1), Partition(1, 1, 1, 1)
        )
        ev = Evaluator(arch).evaluate_group(g, lms, batch=1, keep_traffic=True)
        assert ev.traffic is not None
        assert ev.traffic.total_byte_hops() > 0


class TestTrafficConservation:
    def test_interlayer_bytes_match_requirement(self):
        """Bytes injected for the a->b dependency equal b's halo-aware
        ifmap requirement (single-part producer and consumer)."""
        g = two_layer_graph()
        arch = small_arch()
        lms = manual_lms(
            g, (0,), (15,), Partition(1, 1, 1, 1), Partition(1, 1, 1, 1)
        )
        evaluator = Evaluator(arch)
        parsed = parse_lms(g, lms)
        intra = evaluator._intra_results(parsed)
        analyzer = GroupTrafficAnalyzer(g, arch, evaluator.topo)
        traffic = analyzer.analyze(parsed, lms, intra, {})
        hops = len(evaluator.topo.route(
            evaluator.topo.core_node(0), evaluator.topo.core_node(15)
        ))
        layer_b = g.layer("b")
        need = layer_b.ifmap_bytes(1) * intra["b"][0].if_fetches
        # Every byte traverses every hop of the XY route once.
        inter_hop_bytes = traffic.traffic.total_byte_hops() \
            - traffic.traffic.io_volume() * 1  # DRAM flows measured apart
        assert traffic.traffic.volumes.max() >= need

    def test_dram_reads_balance_interleaving(self):
        g = two_layer_graph()
        arch = small_arch()
        lms = manual_lms(
            g, (0, 1), (2, 3), Partition(1, 1, 1, 2), Partition(2, 1, 1, 1)
        )
        evaluator = Evaluator(arch)
        parsed = parse_lms(g, lms)
        intra = evaluator._intra_results(parsed)
        analyzer = GroupTrafficAnalyzer(g, arch, evaluator.topo)
        traffic = analyzer.analyze(parsed, lms, intra, {})
        reads = traffic.dram_read + traffic.dram_weight_once
        assert reads.sum() > 0
        # Interleaved flows spread within 2x across DRAM dies.
        assert reads.max() <= 2 * reads.min() + 1e-9

    def test_explicit_dram_concentrates_access(self):
        g = two_layer_graph()
        arch = small_arch()
        group = LayerGroup(("a", "b"), batch_unit=1)
        lms = LayerGroupMapping(group, {
            "a": MappingScheme(Partition(1, 1, 1, 2), (0, 1),
                               FlowOfData(1, 1, IMPLICIT)),
            "b": MappingScheme(Partition(2, 1, 1, 1), (2, 3),
                               FlowOfData(IMPLICIT, 1, 1)),
        })
        evaluator = Evaluator(arch)
        parsed = parse_lms(g, lms)
        intra = evaluator._intra_results(parsed)
        analyzer = GroupTrafficAnalyzer(g, arch, evaluator.topo)
        traffic = analyzer.analyze(parsed, lms, intra, {})
        totals = traffic.dram_round_bytes + traffic.dram_weight_once
        assert totals[0] > 0
        assert totals[1:].sum() == 0


class TestMappingEvaluation:
    def test_groups_chain_stored_at(self):
        g = two_layer_graph()
        arch = small_arch()
        g1 = LayerGroup(("a",), batch_unit=1)
        g2 = LayerGroup(("b",), batch_unit=1)
        lms1 = LayerGroupMapping(g1, {
            "a": MappingScheme(Partition(1, 1, 1, 1), (0,),
                               FlowOfData(0, 0, 2)),  # store to DRAM 2
        })
        lms2 = LayerGroupMapping(g2, {
            "b": MappingScheme(Partition(1, 1, 1, 1), (1,),
                               FlowOfData(IMPLICIT, 0, 0)),
        })
        ev = Evaluator(arch)
        result = ev.evaluate_mapping(g, [lms1, lms2], batch=1)
        assert result.delay == pytest.approx(
            sum(gr.delay for gr in result.groups)
        )
        assert result.energy.total == pytest.approx(
            sum(gr.energy.total for gr in result.groups)
        )

    def test_full_model_end_to_end(self):
        graph = build("RN-50")
        arch = g_arch()
        from repro.core.graphpart import partition_graph
        groups = partition_graph(graph, arch, batch=4)
        lmss = [initial_lms(graph, grp, arch) for grp in groups]
        result = Evaluator(arch).evaluate_mapping(graph, lmss, batch=4)
        assert result.delay > 0
        assert result.energy.total > 0
        # MAC energy alone lower-bounds intra energy.
        from repro.arch import DEFAULT_ENERGY
        mac_j = graph.total_macs(4) * DEFAULT_ENERGY.e_mac
        assert result.energy.intra >= mac_j * 0.9


class TestPipelineModel:
    def test_utilization_decreases_with_depth(self):
        u_shallow = pipeline_utilization(rounds=16, depth=2)
        u_deep = pipeline_utilization(rounds=16, depth=12)
        assert u_shallow > u_deep

    def test_utilization_improves_with_rounds(self):
        assert pipeline_utilization(64, 8) > pipeline_utilization(4, 8)
