"""Campaigns: durable DSE that survives crashes and resumes for free.

Runs a small campaign, interrupts it halfway with the built-in fault
injection, resumes it (zero re-evaluation of completed candidates),
proves the resumed export is bit-identical to an uninterrupted run, and
finally starts a second campaign that warm-starts its SA from the first
one's stored mappings.

Run:  python examples/campaign_resume.py
"""

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignInterrupted,
    CampaignRunner,
    CampaignSpec,
    campaign_status,
    export_campaign,
)
from repro.core import SASettings
from repro.dse import DseGrid, Workload, enumerate_candidates
from repro.perf import PERF
from repro.workloads.models import build


def make_spec(name, iterations=30):
    grid = DseGrid(
        tops=72, cuts=(1, 2), dram_bw_per_tops=(2.0,),
        noc_bw_gbps=(32, 64), d2d_ratio=(0.5,), glb_kb=(1024, 2048),
        macs_per_core=(1024,),
    )
    return CampaignSpec(
        name=name,
        candidates=enumerate_candidates(grid),
        workloads=[Workload(build("TF"), batch=64)],
        sa=SASettings(iterations=iterations, seed=7),
    )


def main():
    home = Path(tempfile.mkdtemp(prefix="repro-campaign-")) / "campaigns"
    spec = make_spec("demo")
    print(f"campaign home: {home}")
    print(f"candidates: {len(spec.candidates)}")

    # 1. Start, and get "killed" after 3 checkpointed evaluations.
    try:
        with CampaignRunner(make_spec("demo"), home) as runner:
            runner.run(workers=2, fail_after=3)
    except CampaignInterrupted as exc:
        print(f"\ninterrupted: {exc}")
    print(f"status after crash: {campaign_status(home, 'demo')}")

    # 2. Resume with the same spec: only the pending candidates run.
    PERF.reset()
    with CampaignRunner(make_spec("demo"), home) as runner:
        report = runner.run(workers=2)
    print(f"\nresume evaluated {report.evaluated}, served "
          f"{report.store_hits} from the store "
          f"(SA evaluations: {PERF.get('dse.candidates'):.0f})")
    print(f"best: {report.best.arch.paper_tuple()} "
          f"score={report.best.score:.4g}")

    # 3. Export the full table + Pareto front.
    for label, path in sorted(export_campaign(home, "demo").items()):
        print(f"wrote {path}")

    # 4. A second campaign in the same home warm-starts from the first
    #    one's mappings (same core count, different knobs).
    PERF.reset()
    with CampaignRunner(make_spec("demo-hot", iterations=40), home) as runner:
        report2 = runner.run(workers=2)
    warm = PERF.get("sa.iters_to_best.warm.runs")
    cold = PERF.get("sa.iters_to_best.cold.runs")
    print(f"\nsecond campaign: {report2.evaluated} evaluated, "
          f"{warm:.0f} warm-started SA runs, {cold:.0f} cold")
    if warm:
        print("mean iterations-to-best: warm "
              f"{PERF.get('sa.iters_to_best.warm') / warm:.1f}"
              + (f", cold {PERF.get('sa.iters_to_best.cold') / cold:.1f}"
                 if cold else ""))


if __name__ == "__main__":
    main()
