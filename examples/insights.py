"""Discussion-level insights from a mapping (the paper's Sec VII).

Maps the Transformer onto three accelerator shapes at equal computing
power and prints the derived statistics behind the paper's insights:
average concurrently-processed layers, DRAM traffic per inference,
pipeline fill/drain loss, D2D energy share and the stage-bound
histogram.

Run:  python examples/insights.py
"""

from repro import ArchConfig, MappingEngine, MappingEngineSettings, SASettings
from repro.evalmodel import (
    average_concurrent_layers,
    d2d_energy_share,
    dram_bytes_per_inference,
    pipeline_fill_drain_loss,
    stage_bound_histogram,
)
from repro.reporting import format_table
from repro.units import GB, MB
from repro.workloads.models import build

SHAPES = [
    # label, cores_x, cores_y, macs, xcut
    ("8 fat cores", 4, 2, 8192, 1),
    ("16 cores", 4, 4, 4096, 2),
    ("64 lean cores", 8, 8, 1024, 2),
]


def main():
    graph = build("TF")
    rows = []
    for label, x, y, macs, xcut in SHAPES:
        arch = ArchConfig(
            cores_x=x, cores_y=y, xcut=xcut, ycut=1,
            dram_bw=128 * GB, noc_bw=64 * GB,
            d2d_bw=(64 if xcut == 1 else 32) * GB,
            glb_bytes=2 * MB, macs_per_core=macs, name=label,
        )
        engine = MappingEngine(
            arch,
            settings=MappingEngineSettings(sa=SASettings(iterations=150)),
        )
        result = engine.map(graph, batch=64)
        rows.append([
            label,
            average_concurrent_layers(result),
            dram_bytes_per_inference(result) / 1e6,
            pipeline_fill_drain_loss(result),
            d2d_energy_share(result),
            result.edp * 1e6,
        ])
        bounds = stage_bound_histogram(result)
        print(f"{label}: stage bounds {bounds}")
    print()
    print(format_table(
        ["shape", "avg concurrent layers", "DRAM MB/inf",
         "fill/drain loss", "D2D energy share", "EDP (uJ*s)"],
        rows, floatfmt=".3f",
    ))
    print(
        "\npaper's Sec VII-A2: more/finer cores -> longer pipelines -> "
        "fewer DRAM accesses,\nwith diminishing returns and growing "
        "fill/drain loss."
    )


if __name__ == "__main__":
    main()
