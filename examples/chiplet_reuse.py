"""Chiplet reuse across accelerator scales (the paper's Sec VII-B).

Explores whether one chiplet design can serve both a 128-TOPs and a
512-TOPs accelerator: compares per-level optimal designs against the
joint optimum found with :class:`JointExplorer`, and shows how badly
Simba's tiny 2-TOPs chiplet scales ("one-size-fits-all" fails).

Run:  python examples/chiplet_reuse.py
"""

from repro import SASettings, s_arch
from repro.dse import (
    DesignSpaceExplorer,
    DseGrid,
    JointExplorer,
    Workload,
    enumerate_candidates,
    scale_with_chiplets,
)
from repro.reporting import format_table
from repro.workloads.models import build

LEVELS = (128.0, 512.0)


def grid(tops):
    return DseGrid(
        tops=tops, cuts=(1, 2, 4), dram_bw_per_tops=(1.0,),
        noc_bw_gbps=(64,), d2d_ratio=(0.5,), glb_kb=(2048,),
        macs_per_core=(4096, 8192),
    )


def main():
    workloads = [Workload(build("TF"), batch=64)]
    sa = SASettings(iterations=60)

    def explorer():
        return DesignSpaceExplorer(workloads, sa_settings=sa)

    print("per-level optima:")
    optimal = {}
    for tops in LEVELS:
        report = explorer().explore(enumerate_candidates(grid(int(tops))))
        optimal[tops] = report.best
        print(f"  {tops:.0f} TOPs: {report.best.arch.paper_tuple()} "
              f"MC*E*D={report.best.score:.3g}")

    print("\nSimba chiplets scaled up:")
    for tops in LEVELS:
        arch = scale_with_chiplets(s_arch(), tops)
        r = explorer().evaluate_candidate(arch)
        print(f"  {tops:.0f} TOPs from 2-TOPs Simba chiplets "
              f"({arch.n_chiplets} dies): "
              f"{r.score / optimal[tops].score:.1f}x the optimum")

    print("\njoint exploration (one chiplet for both levels):")
    bases = [
        c for c in enumerate_candidates(grid(int(LEVELS[0])))
        if c.n_chiplets > 1
    ]
    joint = JointExplorer(
        {t: workloads for t in LEVELS}, sa_settings=sa
    ).explore(bases)
    rows = []
    for tops in LEVELS:
        r = joint.best.per_level[tops]
        rows.append([
            f"{tops:.0f} TOPs", r.arch.paper_tuple(),
            r.score / optimal[tops].score,
        ])
    print(format_table(
        ["level", "joint-optimal construction", "score vs optimum"],
        rows, floatfmt=".2f",
    ))
    print("\npaper: the joint optimum averages ~1.34x the per-level optima —"
          "\nan acceptable premium for sharing one chiplet's NRE.")


if __name__ == "__main__":
    main()
