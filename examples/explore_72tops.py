"""72-TOPs design-space exploration (the paper's artifact `dse.sh`).

Runs a scaled-down version of the paper's 72-TOPs DSE: enumerates a
documented subsample of the Table-I grid, co-optimizes the mapping per
candidate with a short SA budget, and prints the winner plus the top-10
leaderboard under MC*E*D.

The paper's converged search (80 threads x 38 min of C++) lands on
(2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024); the scaled-down search
should land in the same neighborhood: few chiplets, 1024-2048 MAC
cores, >=2 MB GLB.

Run:  python examples/explore_72tops.py [--full]
"""

import sys

from repro import SASettings
from repro.dse import DesignSpaceExplorer, DseGrid, Workload, enumerate_candidates
from repro.reporting import format_table
from repro.workloads.models import build

#: Scaled-down grid: one value axis at a time is narrowed; widen towards
#: DseGrid.paper_grid(72) for a full-fidelity run.
QUICK_GRID = DseGrid(
    tops=72,
    cuts=(1, 2, 6),
    dram_bw_per_tops=(2.0,),
    noc_bw_gbps=(32, 64),
    d2d_ratio=(0.5,),
    glb_kb=(1024, 2048),
    macs_per_core=(1024, 2048),
)


def main(full: bool = False):
    grid = DseGrid.paper_grid(72) if full else QUICK_GRID
    candidates = enumerate_candidates(grid)
    print(f"exploring {len(candidates)} architecture candidates "
          f"({'full Table-I grid' if full else 'quick grid'})")

    explorer = DesignSpaceExplorer(
        [Workload(build("TF"), batch=64)],
        sa_settings=SASettings(iterations=80),
    )
    report = explorer.explore(candidates)

    rows = [
        [r.arch.paper_tuple(), r.mc.total, r.energy * 1e3, r.delay * 1e3,
         r.score / report.best.score]
        for r in report.top(10)
    ]
    print()
    print(format_table(
        ["architecture", "MC ($)", "E (mJ)", "D (ms)", "score/best"],
        rows, floatfmt=".3g",
    ))
    print(f"\nbest architecture: {report.best.arch.paper_tuple()}")
    print("paper's converged best: (2, 36, 144GB/s, 32GB/s, 16GB/s, 2MB, 1024)")
    print(f"wall time: {report.wall_time_s:.1f}s")


if __name__ == "__main__":
    main(full="--full" in sys.argv)
