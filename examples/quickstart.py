"""Quickstart: map a Transformer onto the paper's G-Arch with Gemini.

Builds the Transformer workload, maps it with the Tangram baseline
(T-Map) and with Gemini's SA-optimized mapping (G-Map) on the explored
72-TOPs G-Arch, and prints delay/energy with breakdowns — a miniature
of the paper's Fig 5 ablation.

Run:  python examples/quickstart.py
"""

from repro import MappingEngine, MappingEngineSettings, SASettings, g_arch
from repro.baselines import tangram_map
from repro.cost import DEFAULT_MC
from repro.reporting import format_table
from repro.workloads.models import build


def main():
    graph = build("TF")
    arch = g_arch()
    batch = 64

    print(f"workload: {graph.name} ({len(graph)} layers, "
          f"{graph.total_macs(1) / 1e9:.2f} GMACs/sample), batch {batch}")
    print(f"architecture: {arch}")
    print(f"monetary cost: {DEFAULT_MC.evaluate(arch).describe()}\n")

    baseline = tangram_map(graph, arch, batch)
    engine = MappingEngine(
        arch, settings=MappingEngineSettings(sa=SASettings(iterations=300))
    )
    gemini = engine.map(graph, batch)

    rows = []
    for label, result in (("T-Map (Tangram)", baseline), ("G-Map (Gemini)", gemini)):
        e = result.evaluation.energy
        rows.append([
            label,
            result.delay * 1e3,
            e.total * 1e3,
            e.network * 1e3,
            e.intra * 1e3,
            e.dram * 1e3,
        ])
    print(format_table(
        ["mapping", "delay (ms)", "energy (mJ)", "network (mJ)",
         "intra-tile (mJ)", "DRAM (mJ)"],
        rows, floatfmt=".2f",
    ))
    print(
        f"\nG-Map vs T-Map on the same silicon: "
        f"{baseline.delay / gemini.delay:.2f}x faster, "
        f"{baseline.energy / gemini.energy:.2f}x more energy-efficient"
    )
    stats = gemini.sa_stats
    print(
        f"SA: {stats.iterations} iterations, "
        f"{stats.acceptance_rate:.0%} acceptance, "
        f"{stats.improvement:.0%} cost reduction over the stripe heuristic"
    )


if __name__ == "__main__":
    main()
