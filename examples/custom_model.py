"""Bring your own DNN: define a model, map it, lower it to instructions.

Shows the full public pipeline on a custom workload: build a small
residual CNN with :class:`GraphBuilder`, encode/validate an explicit
LP SPM scheme by hand (the paper's Fig 3 in code), let the engine
optimize the whole network, and lower one layer group to the per-core
static instruction streams the template's control units execute.

Run:  python examples/custom_model.py
"""

from repro import ArchConfig, MappingEngine, MappingEngineSettings, SASettings
from repro.core import (
    FlowOfData,
    IMPLICIT,
    LayerGroup,
    LayerGroupMapping,
    MappingScheme,
    Partition,
    validate_lms,
)
from repro.instructions import conservation_check, generate_programs
from repro.units import GB, MB
from repro.workloads.models.common import GraphBuilder


def build_edge_cnn():
    """A small residual CNN for a 64x64 camera input."""
    b = GraphBuilder("edge_cnn", in_h=64, in_w=64, in_k=3)
    x = b.conv(None, 32, kernel=3, stride=2, name="stem")
    for i in range(3):
        y = b.conv(x, 32, kernel=3, name=f"blk{i}_a")
        y = b.conv(y, 32, kernel=3, name=f"blk{i}_b")
        x = b.add([x, y], name=f"blk{i}_add")
    x = b.pool(x, kernel=2, name="down")
    x = b.global_pool(x, name="gap")
    b.fc(x, 10, name="head")
    return b.build()


def main():
    graph = build_edge_cnn()
    arch = ArchConfig(
        cores_x=4, cores_y=4, xcut=2, ycut=1,
        dram_bw=32 * GB, noc_bw=32 * GB, d2d_bw=16 * GB,
        glb_bytes=1 * MB, macs_per_core=1024, name="edge-16",
    )
    print(f"model: {graph.name}, {len(graph)} layers, "
          f"{graph.total_macs(1) / 1e6:.1f} MMACs/sample")

    # --- hand-written encoding for the first two layers (Fig 3 style) ---
    group = LayerGroup(("stem", "blk0_a"), batch_unit=2)
    lms = LayerGroupMapping(group, {
        "stem": MappingScheme(
            Partition(h=2, w=1, b=2, k=2),           # 8 parts
            core_group=(0, 1, 2, 3, 4, 5, 6, 7),     # ordered!
            # stem also feeds blk0_add *outside* this group, so its
            # ofmap flow must be explicit (0 = interleave over DRAMs).
            fd=FlowOfData(ifmap=0, weight=0, ofmap=0),
        ),
        "blk0_a": MappingScheme(
            Partition(h=2, w=2, b=2, k=1),
            core_group=(8, 9, 10, 11, 12, 13, 14, 15),
            fd=FlowOfData(ifmap=IMPLICIT, weight=0, ofmap=0),
        ),
    })
    validate_lms(graph, lms, arch.n_cores, arch.n_dram)
    print("hand-written LMS validates: "
          f"{lms.total_cores()} cores across {len(group)} layers")

    # --- full engine on the whole network ---
    engine = MappingEngine(
        arch, settings=MappingEngineSettings(sa=SASettings(iterations=150))
    )
    result = engine.map(graph, batch=8)
    print(f"\nmapped {len(result.groups)} layer groups: "
          f"delay {result.delay * 1e6:.0f} us, "
          f"energy {result.energy * 1e6:.0f} uJ per batch-8 inference")

    # --- lower the first group to per-core instruction streams ---
    programs = generate_programs(graph, result.lmss[0], arch)
    sent, received = conservation_check(programs)
    print(f"\ninstruction lowering of group 0 "
          f"({', '.join(result.lmss[0].group.layers)}):")
    for core in sorted(programs)[:4]:
        prog = programs[core]
        ops = [i.op.value for i in prog.instructions]
        print(f"  core {core:2d}: {len(ops)} instrs "
              f"(recv {prog.bytes_received() / 1024:.1f} KiB, "
              f"send {prog.bytes_sent() / 1024:.1f} KiB): "
              f"{' '.join(ops[:8])}{' ...' if len(ops) > 8 else ''}")
    print(f"  ... conservation: {sent:.0f} bytes sent == "
          f"{received:.0f} received: {abs(sent - received) < 1e-6}")


if __name__ == "__main__":
    main()
