"""Network-traffic heatmaps: the paper's Fig 9 as ASCII art.

Maps the Transformer's heaviest layer group onto the 72-TOPs G-Arch
with the Tangram stripe heuristic and with Gemini's annealed scheme,
then renders both per-link traffic heatmaps and the hop/D2D statistics
that explain why the Gemini scheme wins: congestion is dispersed and
traffic over the (black-bracketed) D2D links shrinks.

Run:  python examples/traffic_heatmap.py
"""

from repro import Evaluator, SASettings, g_arch
from repro.core import SAController
from repro.core.graphpart import partition_graph
from repro.core.initial import initial_lms
from repro.core.parser import parse_lms
from repro.evalmodel import GroupTrafficAnalyzer
from repro.reporting import format_table, heat_summary, render_ascii
from repro.workloads.models import build


def traffic_of(graph, arch, evaluator, lms):
    parsed = parse_lms(graph, lms)
    intra = evaluator._intra_results(parsed)
    return GroupTrafficAnalyzer(graph, arch, evaluator.topo).analyze(
        parsed, lms, intra, {}
    )


def main():
    graph = build("TF")
    arch = g_arch()
    evaluator = Evaluator(arch)
    groups = partition_graph(graph, arch, batch=64)
    group = max(
        groups,
        key=lambda g: sum(
            graph.layer(n).ofmap_bytes(g.batch_unit) for n in g.layers
        ),
    )
    print(f"layer group: {len(group)} layers, batch unit {group.batch_unit}")
    print(f"layers: {', '.join(group.layers)}\n")

    tangram = initial_lms(graph, group, arch)
    sa = SAController(
        graph, evaluator, [tangram], batch=64,
        settings=SASettings(iterations=500, seed=3),
    )
    gemini = sa.run()[0]

    t = traffic_of(graph, arch, evaluator, tangram)
    g = traffic_of(graph, arch, evaluator, gemini)
    ts, gs = heat_summary(t.traffic), heat_summary(g.traffic)
    rows = [
        [k, ts[k], gs[k], gs[k] / ts[k] - 1 if ts[k] else 0.0] for k in ts
    ]
    print(format_table(
        ["metric (bytes/round)", "Tangram", "Gemini", "change"], rows,
    ))
    print("\nTangram SPM ([x] marks D2D links):")
    print(render_ascii(t.traffic))
    print("\nGemini SPM:")
    print(render_ascii(g.traffic))


if __name__ == "__main__":
    main()
